//! Training-curve recording — the data behind the paper's Figs. 2 and 5–7.

use eagle_obs::Telemetry;
use serde::{Deserialize, Serialize};

/// One evaluated placement during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// 1-based sample index.
    pub sample: u64,
    /// Simulated wall-clock when the measurement finished (seconds) — the x-axis of
    /// the paper's figures.
    pub wall_clock: f64,
    /// Measured per-step time of this sample; `None` for invalid (OOM) placements.
    pub measured: Option<f64>,
    /// Best valid per-step time seen so far (the y-value the figures plot).
    pub best_so_far: Option<f64>,
}

/// One zero-shot evaluation of the policy on a held-out graph, taken during
/// training without touching the training stream (see
/// [`Trainer::builder`](crate::Trainer::builder)'s `probe_every`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Training-sample index the probe was taken at.
    pub sample: u64,
    /// Held-out graph name.
    pub graph: String,
    /// Best (noise-free) step time over the probe's sampled placements;
    /// `None` when every candidate OOMed.
    pub step_time: Option<f64>,
}

/// A labeled training curve.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Curve {
    /// Approach label ("EAGLE (PPO)", "Post", ...).
    pub label: String,
    /// Points in sampling order.
    pub points: Vec<CurvePoint>,
    /// Zero-shot probes on held-out graphs, in probe order (empty unless the
    /// producing trainer had probes enabled).
    pub probes: Vec<ProbePoint>,
    /// Run telemetry snapshot, when the producing trainer recorded one.
    /// Excluded from curve equality in tests: `episodes_per_sec` is host
    /// time, not simulated time.
    pub telemetry: Option<Telemetry>,
}

impl Curve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new(), probes: Vec::new(), telemetry: None }
    }

    /// Appends a measurement, maintaining `best_so_far`.
    pub fn push(&mut self, sample: u64, wall_clock: f64, measured: Option<f64>) {
        let prev_best = self.points.last().and_then(|p| p.best_so_far);
        let best_so_far = match (prev_best, measured) {
            (Some(b), Some(m)) => Some(b.min(m)),
            (None, m) => m,
            (b, None) => b,
        };
        self.points.push(CurvePoint { sample, wall_clock, measured, best_so_far });
    }

    /// Number of invalid samples recorded.
    pub fn num_invalid(&self) -> usize {
        self.points.iter().filter(|p| p.measured.is_none()).count()
    }

    /// Final best value.
    pub fn best(&self) -> Option<f64> {
        self.points.last().and_then(|p| p.best_so_far)
    }

    /// Renders the curve as CSV (`sample,wall_clock,measured,best_so_far`), with
    /// empty fields for invalid samples.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("sample,wall_clock,measured,best_so_far\n");
        for p in &self.points {
            s.push_str(&format!(
                "{},{:.3},{},{}\n",
                p.sample,
                p.wall_clock,
                p.measured.map(|m| format!("{m:.6}")).unwrap_or_default(),
                p.best_so_far.map(|b| format!("{b:.6}")).unwrap_or_default(),
            ));
        }
        s
    }

    /// Writes a set of curves as one CSV with a leading `label` column.
    pub fn multi_csv(curves: &[Curve]) -> String {
        let mut s = String::from("label,sample,wall_clock,measured,best_so_far\n");
        for c in curves {
            for p in &c.points {
                s.push_str(&format!(
                    "{},{},{:.3},{},{}\n",
                    c.label,
                    p.sample,
                    p.wall_clock,
                    p.measured.map(|m| format!("{m:.6}")).unwrap_or_default(),
                    p.best_so_far.map(|b| format!("{b:.6}")).unwrap_or_default(),
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_so_far_is_monotone_nonincreasing() {
        let mut c = Curve::new("t");
        c.push(1, 10.0, Some(5.0));
        c.push(2, 20.0, Some(7.0));
        c.push(3, 30.0, None);
        c.push(4, 40.0, Some(3.0));
        let bests: Vec<f64> = c.points.iter().map(|p| p.best_so_far.unwrap()).collect();
        assert_eq!(bests, vec![5.0, 5.0, 5.0, 3.0]);
        assert_eq!(c.num_invalid(), 1);
        assert_eq!(c.best(), Some(3.0));
    }

    #[test]
    fn invalid_prefix_has_no_best() {
        let mut c = Curve::new("t");
        c.push(1, 1.0, None);
        assert_eq!(c.points[0].best_so_far, None);
        c.push(2, 2.0, Some(9.0));
        assert_eq!(c.best(), Some(9.0));
    }

    #[test]
    fn csv_formats() {
        let mut c = Curve::new("EAGLE");
        c.push(1, 1.5, Some(2.0));
        c.push(2, 3.0, None);
        let csv = c.to_csv();
        assert!(csv.starts_with("sample,wall_clock"));
        assert!(csv.contains("1,1.500,2.000000,2.000000"));
        assert!(csv.contains("2,3.000,,2.000000"));
        let multi = Curve::multi_csv(&[c]);
        assert!(multi.contains("EAGLE,1,"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = Curve::new("x");
        c.push(1, 1.0, Some(4.0));
        let j = serde_json::to_string(&c).unwrap();
        let c2: Curve = serde_json::from_str(&j).unwrap();
        assert_eq!(c2.points, c.points);
    }
}
