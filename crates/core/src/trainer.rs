//! The training driver: samples placements from an agent, measures them in the
//! environment, shapes rewards, and applies the selected RL algorithm — the outer
//! loop of every experiment in the paper.

use eagle_devsim::{Environment, Placement};
use eagle_rl::{
    top_k_indices, CrossEntropyMin, EmaBaseline, OptimConfig, Ppo, Reinforce, RewardTransform,
    TrainSample,
};
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use eagle_obs::Telemetry;

use crate::agents::PlacementAgent;
use crate::curve::Curve;

/// Which training algorithm drives the agent (paper Sec. III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Plain REINFORCE with the EMA baseline.
    Reinforce,
    /// Clipped-surrogate PPO (the paper's pick for EAGLE).
    Ppo,
    /// PPO joined with cross-entropy minimization (Post's algorithm;
    /// also `EAGLE (PPO+CE)` in Table IV).
    PpoCe,
}

impl Algo {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Reinforce => "REINFORCE",
            Algo::Ppo => "PPO",
            Algo::PpoCe => "PPO+CE",
        }
    }
}

/// Trainer configuration (defaults = paper Sec. IV-C).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Total placements to sample.
    pub total_samples: usize,
    /// Samples per policy update (paper: 10).
    pub minibatch: usize,
    /// Optimizer settings (paper: Adam lr 0.01, clip 1.0, entropy 0.01).
    pub optim: OptimConfig,
    /// PPO clip ratio (paper: 0.3).
    pub ppo_clip: f32,
    /// PPO epochs per minibatch (paper: 4).
    pub ppo_epochs: usize,
    /// Samples between cross-entropy updates (paper: 50).
    pub ce_interval: usize,
    /// Number of elite samples per CE update (paper: 5).
    pub ce_elites: usize,
    /// Gradient steps per CE update.
    pub ce_steps: usize,
    /// EMA weight for the reward baseline.
    pub ema_alpha: f64,
    /// Per-step time charged to invalid (OOM) placements when shaping rewards.
    pub invalid_penalty_time: f64,
    /// Reward transform applied to measured per-step times (paper: `-sqrt(t)`).
    pub reward: RewardTransform,
    /// Subtract the EMA baseline from rewards (paper: yes). Disable for ablation.
    pub use_baseline: bool,
    /// Normalize advantages to unit scale within each minibatch (standard PPO
    /// practice; makes learning robust to the absolute reward scale, which spans
    /// -sqrt(0.07) to -sqrt(100) across the three benchmarks).
    pub normalize_adv: bool,
    /// RNG seed (sampling).
    pub seed: u64,
    /// The algorithm.
    pub algo: Algo,
    /// Worker threads for the rollout engine (0 = one per available core,
    /// 1 = fully serial). The trained policy, curve and best placement are
    /// identical for every value — only host wall-time changes (see DESIGN.md,
    /// "Parallel rollout engine").
    pub workers: usize,
}

impl TrainerConfig {
    /// Paper hyper-parameters with the given sample budget and algorithm.
    pub fn paper(algo: Algo, total_samples: usize) -> Self {
        Self {
            total_samples,
            minibatch: 10,
            optim: OptimConfig::default(),
            ppo_clip: 0.3,
            ppo_epochs: 4,
            ce_interval: 50,
            ce_elites: 5,
            ce_steps: 4,
            ema_alpha: 0.1,
            invalid_penalty_time: 100.0,
            reward: RewardTransform::NegSqrt,
            use_baseline: true,
            normalize_adv: true,
            seed: 7,
            algo,
            workers: 0,
        }
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Best placement found (if any valid placement was sampled).
    pub best_placement: Option<Placement>,
    /// Per-step time of the best placement under the *final* measurement protocol
    /// (1,000 steps), as the paper reports in its tables.
    pub final_step_time: Option<f64>,
    /// The training curve.
    pub curve: Curve,
    /// Number of invalid (OOM) samples encountered.
    pub num_invalid: usize,
    /// Total samples drawn.
    pub samples: usize,
    /// Run telemetry snapshot (also attached to `curve`).
    pub telemetry: Telemetry,
}

/// Runs the full training loop of `agent` against `env`.
///
/// Sampling stays serial and seeded, so the action sequences — and therefore
/// the curve, the trained policy and the best placement — are bit-identical
/// for every `cfg.workers` value. Only the pure parts of each episode
/// (`agent.decode` and the placement simulation) fan out across threads.
pub fn train(
    agent: &(impl PlacementAgent + Sync),
    params: &mut Params,
    env: &mut Environment,
    cfg: &TrainerConfig,
) -> TrainResult {
    assert!(cfg.minibatch > 0, "minibatch must be positive");
    let host_start = std::time::Instant::now();
    let start = env.snapshot();
    let rec = env.recorder().clone();
    let workers = eagle_devsim::resolve_workers(cfg.workers);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut baseline = EmaBaseline::new(cfg.ema_alpha);
    let mut curve = Curve::new(agent.name());

    let mut reinforce = Reinforce::new(cfg.optim.clone()).with_recorder(rec.clone());
    let mut ppo =
        Ppo::new(cfg.optim.clone(), cfg.ppo_clip, cfg.ppo_epochs).with_recorder(rec.clone());
    let mut ce = CrossEntropyMin::new(cfg.optim.clone(), cfg.ce_steps).with_recorder(rec.clone());

    // Sample history for elite selection (actions + reward).
    let mut history_actions: Vec<Vec<usize>> = Vec::new();
    let mut history_rewards: Vec<f64> = Vec::new();
    let mut since_ce = 0usize;

    let mut best: Option<(f64, Placement)> = None;
    let mut num_invalid = 0usize;
    let mut samples = 0usize;

    while samples < cfg.total_samples {
        let batch_size = cfg.minibatch.min(cfg.total_samples - samples);
        rec.add("trainer.minibatches", 1);

        // Phase A (serial, seeded): draw the minibatch's action sequences.
        // This is the only consumer of the trainer RNG, so batching preserves
        // the exact serial action stream.
        let sample_span = rec.span("trainer.sample_us");
        let drawn: Vec<_> = (0..batch_size).map(|_| agent.sample(params, &mut rng)).collect();
        drop(sample_span);

        // Phase B (parallel): decode actions into placements — a pure forward
        // pass through the frozen placer, safe to fan out.
        let decode_span = rec.span("trainer.decode_us");
        let placements: Vec<Placement> = if workers > 1 && batch_size > 1 {
            let params_ref: &Params = params;
            let mut out: Vec<Option<Placement>> = vec![None; batch_size];
            let chunk = batch_size.div_ceil(workers);
            crossbeam::thread::scope(|s| {
                for (acts, slots) in drawn.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    s.spawn(move |_| {
                        for ((actions, _), slot) in acts.iter().zip(slots.iter_mut()) {
                            *slot = Some(agent.decode(params_ref, actions));
                        }
                    });
                }
            })
            .expect("decode worker panicked");
            out.into_iter().map(|p| p.expect("every action sequence decoded")).collect()
        } else {
            drawn.iter().map(|(actions, _)| agent.decode(params, actions)).collect()
        };
        drop(decode_span);

        // Phase C: evaluate the minibatch (cache probes and noise serial,
        // cache-miss simulations parallel — see `Environment::evaluate_batch`).
        let evaluate_span = rec.span("trainer.evaluate_us");
        let wall_before = env.wall_clock();
        let measurements = env.evaluate_batch(&placements, workers);
        drop(evaluate_span);
        // Rebuild the per-episode wall-clock by accumulating costs in episode
        // order — the same float additions the serial loop performs, so curve
        // x-values are bit-identical.
        let mut wall = wall_before;

        // Phase D (serial): rewards, baseline, curve, policy update — in
        // episode order.
        let update_span = rec.span("trainer.update_us");
        let mut batch: Vec<TrainSample> = Vec::with_capacity(batch_size);
        for (((actions, old_log_prob), placement), meas) in
            drawn.into_iter().zip(&placements).zip(&measurements)
        {
            samples += 1;
            since_ce += 1;
            let reward = match meas.step_time {
                Some(t) => {
                    if best.as_ref().is_none_or(|(b, _)| t < *b) {
                        best = Some((t, placement.clone()));
                    }
                    cfg.reward.apply(t)
                }
                None => {
                    num_invalid += 1;
                    cfg.reward.apply(cfg.invalid_penalty_time)
                }
            };
            wall += meas.wall_cost;
            curve.push(samples as u64, wall, meas.step_time);
            let advantage = if cfg.use_baseline {
                baseline.advantage(reward) as f32
            } else {
                reward as f32
            };
            history_actions.push(actions.clone());
            history_rewards.push(reward);
            batch.push(TrainSample { actions, old_log_prob, advantage });
        }

        if cfg.normalize_adv && batch.len() > 1 {
            let mean =
                batch.iter().map(|s| s.advantage).sum::<f32>() / batch.len() as f32;
            let var = batch
                .iter()
                .map(|s| (s.advantage - mean).powi(2))
                .sum::<f32>()
                / batch.len() as f32;
            let std = var.sqrt().max(1e-6);
            for s in &mut batch {
                s.advantage /= std;
            }
        }

        match cfg.algo {
            Algo::Reinforce => {
                reinforce.update(agent, params, &batch);
            }
            Algo::Ppo => {
                ppo.update(agent, params, &batch);
            }
            Algo::PpoCe => {
                ppo.update(agent, params, &batch);
                if since_ce >= cfg.ce_interval {
                    since_ce = 0;
                    let top = top_k_indices(&history_rewards, cfg.ce_elites);
                    let elites: Vec<Vec<usize>> =
                        top.iter().map(|&i| history_actions[i].clone()).collect();
                    ce.update(agent, params, &elites);
                }
            }
        }
        drop(update_span);
    }

    // Final 1,000-step measurement of the best placement (paper protocol).
    let (best_placement, final_step_time) = match best {
        Some((_, p)) => {
            let t = env.evaluate_final(&p);
            (Some(p), t)
        }
        None => (None, None),
    };

    let run = env.snapshot().since(&start);
    let elapsed = host_start.elapsed().as_secs_f64();
    let telemetry = Telemetry {
        episodes_per_sec: if elapsed > 0.0 { samples as f64 / elapsed } else { 0.0 },
        evals: run.evals,
        invalid_evals: run.invalid_evals,
        cache_hits: run.cache.hits,
        cache_misses: run.cache.misses,
        cache_evictions: run.cache.evictions,
        cache_hit_rate: run.cache.hit_rate(),
        sim_wall_clock: run.wall_clock,
        workers,
    };
    curve.telemetry = Some(telemetry);

    TrainResult { best_placement, final_step_time, curve, num_invalid, samples, telemetry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{EagleAgent, FixedGroupAgent, PlacerKind};
    use crate::scale::AgentScale;
    use eagle_devsim::{Machine, MeasureConfig};
    use eagle_opgraph::builders;

    fn tiny_env() -> (eagle_opgraph::OpGraph, Machine, Environment) {
        let g = builders::gnmt(&builders::GnmtConfig {
            batch: 2,
            hidden: 4,
            layers: 2,
            seq_len: 3,
            vocab: 20,
        });
        let m = Machine::paper_machine();
        let env = Environment::builder(g.clone(), m.clone())
            .measure(MeasureConfig::exact())
            .seed(3)
            .build()
            .expect("valid tiny environment");
        (g, m, env)
    }

    #[test]
    fn training_improves_over_first_samples() {
        let (g, m, mut env) = tiny_env();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 120);
        cfg.optim.lr = 0.05; // tiny nets: faster convergence for the test
        let result = train(&agent, &mut params, &mut env, &cfg);
        assert_eq!(result.samples, 120);
        assert_eq!(result.curve.points.len(), 120);
        let t = result.final_step_time.expect("found a valid placement");
        // The first sampled placement is essentially random; training must do
        // at least as well, and the curve's best must be monotone.
        let first = result.curve.points[0].measured.unwrap_or(f64::INFINITY);
        assert!(t <= first * 1.01, "final {t} should not be worse than first {first}");
        let mut prev = f64::INFINITY;
        for p in &result.curve.points {
            if let Some(b) = p.best_so_far {
                assert!(b <= prev + 1e-12);
                prev = b;
            }
        }
    }

    #[test]
    fn all_algorithms_run() {
        for algo in [Algo::Reinforce, Algo::Ppo, Algo::PpoCe] {
            let (g, m, mut env) = tiny_env();
            let mut params = Params::new();
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let group_of: Vec<usize> = (0..g.len()).map(|i| i * 4 / g.len()).collect();
            let agent = FixedGroupAgent::new(
                &mut params,
                "t",
                &g,
                &m,
                group_of,
                4,
                PlacerKind::Simple,
                AgentScale::tiny(),
                &mut rng,
            );
            let mut cfg = TrainerConfig::paper(algo, 60);
            cfg.ce_interval = 20;
            let result = train(&agent, &mut params, &mut env, &cfg);
            assert_eq!(result.samples, 60, "{algo:?}");
            assert!(result.final_step_time.is_some(), "{algo:?}");
        }
    }

    #[test]
    fn wall_clock_monotone_in_curve() {
        let (g, m, mut env) = tiny_env();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let cfg = TrainerConfig::paper(Algo::Ppo, 30);
        let result = train(&agent, &mut params, &mut env, &cfg);
        let mut prev = 0.0;
        for p in &result.curve.points {
            assert!(p.wall_clock >= prev);
            prev = p.wall_clock;
        }
    }

    #[test]
    fn algo_labels() {
        assert_eq!(Algo::Reinforce.label(), "REINFORCE");
        assert_eq!(Algo::Ppo.label(), "PPO");
        assert_eq!(Algo::PpoCe.label(), "PPO+CE");
    }
}
