//! The training driver: samples placements from an agent, measures them in the
//! environment, shapes rewards, and applies the selected RL algorithm — the outer
//! loop of every experiment in the paper.
//!
//! The entry point is [`Trainer::builder`], mirroring
//! [`Environment::builder`](eagle_devsim::Environment::builder): construction
//! validates every knob up front and returns a typed [`ConfigError`] instead of
//! silently accepting a zero minibatch or an inconsistent CE schedule. The
//! trainer owns its environments — it draws one graph per minibatch from a
//! [`GraphSource`](crate::GraphSource) and measures placements in a per-graph
//! environment pool, so one policy can train over a whole *distribution* of
//! graphs (the GDP/Placeto generalist direction). Single-graph training is the
//! `GraphSource::fixed` special case and keeps the exact sampling and
//! measurement streams of the classic single-benchmark trainer.
//!
//! The loop is *resumable*: [`Trainer::train`] starts fresh,
//! [`Trainer::train_from`] continues from a [`TrainerState`] captured at a
//! minibatch boundary (see [`crate::checkpoint`]), and the two compose
//! bit-identically — a run killed after minibatch *k* and resumed produces the
//! same curve, parameters and best placement as an uninterrupted run with the
//! same seed, including the multi-graph state (source cursor, per-graph
//! environments and baselines).

use std::collections::VecDeque;

use eagle_devsim::{
    simulate, EnvError, EnvSnapshot, EnvStateError, Environment, Machine, MeasureConfig, Placement,
    RngState,
};
use eagle_rl::{
    top_k_indices, CrossEntropyMin, EmaBaseline, OptimConfig, Ppo, Reinforce, RewardTransform,
    TrainSample,
};
use eagle_tensor::optim::Adam;
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use eagle_obs::{Recorder, Telemetry};
use eagle_opgraph::OpGraph;

use crate::agents::PlacementAgent;
use crate::checkpoint::{save_checkpoint, GraphEntryState, TrainerState, CHECKPOINT_FILE};
use crate::curve::{Curve, ProbePoint};
use crate::source::{splitmix64, GraphOrigin, GraphSource, SourceCursor, SourceError};

/// Which training algorithm drives the agent (paper Sec. III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Plain REINFORCE with the EMA baseline.
    Reinforce,
    /// Clipped-surrogate PPO (the paper's pick for EAGLE).
    Ppo,
    /// PPO joined with cross-entropy minimization (Post's algorithm;
    /// also `EAGLE (PPO+CE)` in Table IV).
    PpoCe,
}

impl Algo {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Reinforce => "REINFORCE",
            Algo::Ppo => "PPO",
            Algo::PpoCe => "PPO+CE",
        }
    }
}

/// Trainer configuration (defaults = paper Sec. IV-C).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Total placements to sample.
    pub total_samples: usize,
    /// Samples per policy update (paper: 10).
    pub minibatch: usize,
    /// Optimizer settings (paper: Adam lr 0.01, clip 1.0, entropy 0.01).
    pub optim: OptimConfig,
    /// PPO clip ratio (paper: 0.3).
    pub ppo_clip: f32,
    /// PPO epochs per minibatch (paper: 4).
    pub ppo_epochs: usize,
    /// Samples between cross-entropy updates (paper: 50).
    pub ce_interval: usize,
    /// Number of elite samples per CE update (paper: 5).
    pub ce_elites: usize,
    /// Gradient steps per CE update.
    pub ce_steps: usize,
    /// EMA weight for the reward baseline.
    pub ema_alpha: f64,
    /// Per-step time charged to invalid (OOM) placements when shaping rewards.
    pub invalid_penalty_time: f64,
    /// Reward transform applied to measured per-step times (paper: `-sqrt(t)`).
    pub reward: RewardTransform,
    /// Subtract the EMA baseline from rewards (paper: yes). Disable for ablation.
    /// Multi-graph sources keep one baseline per graph, so step-time scale
    /// differences between graphs do not leak into advantages.
    pub use_baseline: bool,
    /// Normalize advantages to unit scale within each minibatch (standard PPO
    /// practice; makes learning robust to the absolute reward scale, which spans
    /// -sqrt(0.07) to -sqrt(100) across the three benchmarks).
    pub normalize_adv: bool,
    /// RNG seed (sampling).
    pub seed: u64,
    /// The algorithm.
    pub algo: Algo,
    /// Worker threads for the simulation side of the rollout engine (0 = one
    /// per available core, 1 = fully serial). Sampling and decoding run as one
    /// batched forward pass regardless of this setting; only cache-miss
    /// placement simulations fan out. The trained policy, curve and best
    /// placement are identical for every value — only host wall-time changes
    /// (see DESIGN.md, "Parallel rollout engine" and "Batched policy API").
    pub workers: usize,
    /// Rolling window (in samples) of the action/reward history kept for CE
    /// elite selection. The effective window is
    /// `max(history_window, ce_interval, ce_elites)`, so CE always sees at
    /// least one full interval. Bounding the history fixes the unbounded memory
    /// growth the earlier trainer had on long runs (it retained every sample of
    /// the run) and bounds checkpoint size.
    pub history_window: usize,
    /// Auto-checkpoint period in minibatches; requires `checkpoint_dir` to also
    /// be set. `None` (the default) disables auto-checkpointing.
    pub checkpoint_every: Option<usize>,
    /// Directory checkpoints are written into (as
    /// [`CHECKPOINT_FILE`](crate::checkpoint::CHECKPOINT_FILE)); created on
    /// first save. A failed save is logged and counted
    /// (`trainer.checkpoint_errors`), never fatal to the run.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl TrainerConfig {
    /// Paper hyper-parameters with the given sample budget and algorithm.
    pub fn paper(algo: Algo, total_samples: usize) -> Self {
        Self {
            total_samples,
            minibatch: 10,
            optim: OptimConfig::default(),
            ppo_clip: 0.3,
            ppo_epochs: 4,
            ce_interval: 50,
            ce_elites: 5,
            ce_steps: 4,
            ema_alpha: 0.1,
            invalid_penalty_time: 100.0,
            reward: RewardTransform::NegSqrt,
            use_baseline: true,
            normalize_adv: true,
            seed: 7,
            algo,
            workers: 0,
            history_window: 512,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }
}

/// Per-graph outcome of a (possibly multi-graph) training run, for the graphs
/// still resident in the environment pool when the run finished.
#[derive(Debug, Clone)]
pub struct GraphSummary {
    /// Graph name (roster name, model name, or `gen-<seed>`).
    pub name: String,
    /// Source origin the graph was drawn from.
    pub origin: GraphOrigin,
    /// Training samples spent on this graph.
    pub samples: u64,
    /// Best valid per-step time sampled on this graph.
    pub best_step_time: Option<f64>,
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Best placement found (if any valid placement was sampled). `None` for
    /// multi-graph sources, where a single placement is meaningless — see
    /// [`TrainResult::graphs`].
    pub best_placement: Option<Placement>,
    /// Per-step time of the best placement under the *final* measurement protocol
    /// (1,000 steps), as the paper reports in its tables. `None` for
    /// multi-graph sources.
    pub final_step_time: Option<f64>,
    /// The training curve (including zero-shot probes, when enabled).
    pub curve: Curve,
    /// Number of invalid (OOM) samples encountered.
    pub num_invalid: usize,
    /// Total samples drawn.
    pub samples: usize,
    /// Per-graph outcomes for the graphs still resident in the environment
    /// pool (one entry for single-graph sources).
    pub graphs: Vec<GraphSummary>,
    /// Run telemetry snapshot (also attached to `curve`).
    pub telemetry: Telemetry,
}

/// Why a [`TrainerBuilder`] refused to construct a [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `minibatch` must be at least 1.
    ZeroMinibatch,
    /// `total_samples` must be at least 1.
    ZeroTotalSamples,
    /// The PPO+CE schedule needs `ce_interval`, `ce_elites` and `ce_steps`
    /// all at least 1.
    BadCeSchedule {
        /// Configured samples between CE updates.
        interval: usize,
        /// Configured elites per CE update.
        elites: usize,
        /// Configured gradient steps per CE update.
        steps: usize,
    },
    /// PPO needs at least one epoch per minibatch.
    ZeroPpoEpochs,
    /// The EMA baseline weight must be in `(0, 1]`.
    BadEmaAlpha(f64),
    /// The optimizer learning rate must be finite and positive.
    BadLearningRate(f32),
    /// The invalid-placement penalty time must be finite and non-negative.
    BadInvalidPenalty(f64),
    /// `checkpoint_every` must be at least 1 when set.
    ZeroCheckpointEvery,
    /// `checkpoint_every` is set but `checkpoint_dir` is not.
    CheckpointEveryWithoutDir,
    /// The graph source rejected the configuration (empty roster, bad weight,
    /// invalid generator config, impossible holdout split).
    Source(SourceError),
    /// Zero-shot probes requested (`probe_every`) but the holdout split is
    /// empty.
    ProbeWithoutHoldout,
    /// `probe_every` must be at least 1 when set.
    ZeroProbeEvery,
    /// `probe_candidates` must be at least 1.
    ZeroProbeCandidates,
    /// The environment pool must hold at least one graph.
    ZeroPoolCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMinibatch => write!(f, "minibatch must be at least 1"),
            ConfigError::ZeroTotalSamples => write!(f, "total_samples must be at least 1"),
            ConfigError::BadCeSchedule { interval, elites, steps } => write!(
                f,
                "PPO+CE schedule is inconsistent: ce_interval={interval}, ce_elites={elites}, \
                 ce_steps={steps} (all must be at least 1)"
            ),
            ConfigError::ZeroPpoEpochs => write!(f, "ppo_epochs must be at least 1"),
            ConfigError::BadEmaAlpha(a) => {
                write!(f, "ema_alpha must be in (0, 1], got {a}")
            }
            ConfigError::BadLearningRate(lr) => {
                write!(f, "optimizer learning rate must be finite and positive, got {lr}")
            }
            ConfigError::BadInvalidPenalty(t) => {
                write!(f, "invalid_penalty_time must be finite and non-negative, got {t}")
            }
            ConfigError::ZeroCheckpointEvery => {
                write!(f, "checkpoint_every must be at least 1 when set")
            }
            ConfigError::CheckpointEveryWithoutDir => {
                write!(f, "checkpoint_every is set but checkpoint_dir is not")
            }
            ConfigError::Source(e) => write!(f, "graph source: {e}"),
            ConfigError::ProbeWithoutHoldout => {
                write!(f, "probe_every is set but the holdout split is empty")
            }
            ConfigError::ZeroProbeEvery => write!(f, "probe_every must be at least 1 when set"),
            ConfigError::ZeroProbeCandidates => write!(f, "probe_candidates must be at least 1"),
            ConfigError::ZeroPoolCapacity => write!(f, "pool_capacity must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<SourceError> for ConfigError {
    fn from(e: SourceError) -> Self {
        ConfigError::Source(e)
    }
}

/// Why a [`TrainerState`] could not be applied to the given agent/params.
#[derive(Debug)]
pub enum ResumeError {
    /// The checkpoint was produced by a different agent (curve labels differ).
    AgentMismatch {
        /// Agent label recorded in the checkpoint.
        checkpoint: String,
        /// Label of the agent passed to [`Trainer::train_from`].
        agent: String,
    },
    /// The checkpointed parameters do not match the agent's parameter layout.
    ParamMismatch(String),
    /// The checkpointed trainer RNG state is malformed.
    Rng(EnvStateError),
    /// The checkpointed graph-source cursor is malformed.
    Source(EnvStateError),
    /// A checkpointed graph origin does not belong to this trainer's source
    /// (e.g. resuming a generated-distribution checkpoint with a roster).
    SourceMismatch(String),
    /// A checkpointed environment state does not fit its rebuilt environment.
    Env(EnvStateError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::AgentMismatch { checkpoint, agent } => write!(
                f,
                "checkpoint was trained with agent '{checkpoint}', cannot resume with '{agent}'"
            ),
            ResumeError::ParamMismatch(m) => write!(f, "parameter layout mismatch: {m}"),
            ResumeError::Rng(e) => write!(f, "trainer RNG state: {e}"),
            ResumeError::Source(e) => write!(f, "graph-source cursor state: {e}"),
            ResumeError::SourceMismatch(m) => write!(f, "graph source mismatch: {m}"),
            ResumeError::Env(e) => write!(f, "environment state: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Why a training run failed to start or resume.
#[derive(Debug)]
pub enum TrainError {
    /// A checkpointed state could not be applied (see [`ResumeError`]).
    Resume(ResumeError),
    /// An environment for a drawn graph could not be built.
    Env(EnvError),
    /// The agent cannot re-target to new graphs
    /// ([`PlacementAgent::for_graph`] returned `None`), which multi-graph
    /// sources and holdout probes require.
    UnsupportedAgent {
        /// The agent's display name.
        agent: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Resume(e) => write!(f, "resume: {e}"),
            TrainError::Env(e) => write!(f, "environment: {e}"),
            TrainError::UnsupportedAgent { agent } => write!(
                f,
                "agent '{agent}' cannot re-target to new graphs; multi-graph training and \
                 holdout probes need PlacementAgent::for_graph"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<ResumeError> for TrainError {
    fn from(e: ResumeError) -> Self {
        TrainError::Resume(e)
    }
}

impl From<EnvError> for TrainError {
    fn from(e: EnvError) -> Self {
        TrainError::Env(e)
    }
}

/// One resident graph in the trainer's environment pool: its environment
/// (placement cache, OOM gate, noise RNG, wall-clock), reward baseline, best
/// placement and the agent's per-graph view.
struct PoolEntry<A> {
    origin: GraphOrigin,
    name: String,
    env: Environment,
    baseline: EmaBaseline,
    best: Option<(f64, Placement)>,
    graph_samples: u64,
    /// `None` for fixed sources — the caller's agent is already built for the
    /// graph, and using it directly keeps single-graph runs bit-identical to
    /// the classic trainer.
    view: Option<A>,
}

/// All mutable loop state, threaded through `run_loop` so fresh starts and
/// resumes share one code path.
struct LoopState<A> {
    rng: ChaCha8Rng,
    cursor: SourceCursor,
    pool: Vec<PoolEntry<A>>,
    /// Accumulated counters of environments evicted from the pool, so run
    /// telemetry survives eviction.
    retired: EnvSnapshot,
    /// Trainer-level simulated wall-clock: the sum of every measurement's
    /// `wall_cost` in episode order, across all graphs — the monotone x-axis
    /// of the curve. For fixed sources this is bit-identical to the single
    /// environment's own wall-clock (both accumulate the same costs in the
    /// same order).
    wall: f64,
    curve: Curve,
    history_actions: VecDeque<Vec<usize>>,
    history_rewards: VecDeque<f64>,
    since_ce: usize,
    num_invalid: usize,
    samples: usize,
    minibatches: u64,
    /// Aggregate environment snapshot at the *logical* start of the run
    /// (survives resumes), used as the telemetry baseline.
    start: EnvSnapshot,
    /// Optimizer states to restore into the algorithm objects (resume only).
    restored_opts: Option<(Adam, Adam, Adam)>,
}

/// Builds [`Trainer`]s; obtained from [`Trainer::builder`]. Every knob is
/// validated in [`TrainerBuilder::build`].
#[derive(Debug)]
pub struct TrainerBuilder {
    source: GraphSource,
    machine: Machine,
    cfg: TrainerConfig,
    measure: MeasureConfig,
    env_seed: u64,
    cache_capacity: Option<usize>,
    recorder: Recorder,
    holdout: usize,
    probe_every: Option<usize>,
    probe_candidates: usize,
    pool_capacity: usize,
}

impl TrainerBuilder {
    /// Sets the training configuration (default:
    /// `TrainerConfig::paper(Algo::Ppo, 1000)`).
    pub fn config(mut self, cfg: TrainerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the measurement protocol for every pooled environment (default:
    /// [`MeasureConfig::default`]).
    pub fn measure(mut self, measure: MeasureConfig) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the environment noise seed (default 0). Fixed sources use it
    /// verbatim — matching `Environment::builder(..).seed(s)` — while
    /// multi-graph sources derive one deterministic seed per graph from it.
    pub fn env_seed(mut self, seed: u64) -> Self {
        self.env_seed = seed;
        self
    }

    /// Sets the per-environment placement-cache capacity (default: the
    /// environment's own default).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Attaches a telemetry recorder shared by the trainer and every pooled
    /// environment (default: disabled).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Holds out the last `holdout` graphs of the source for zero-shot
    /// evaluation (default 0). Held-out graphs are never drawn for training;
    /// see [`GraphSource::holdout_origins`] for the split rules.
    pub fn holdout(mut self, holdout: usize) -> Self {
        self.holdout = holdout;
        self
    }

    /// Runs a zero-shot probe over every held-out graph each `every`
    /// minibatches, recording results into [`Curve::probes`]. Probes use
    /// their own derived RNG and the pure simulator, so enabling them leaves
    /// the training stream bit-identical (locked by `tests/generalist.rs`).
    pub fn probe_every(mut self, every: usize) -> Self {
        self.probe_every = Some(every);
        self
    }

    /// Placements sampled per held-out graph per probe; the probe reports the
    /// best (default 4).
    pub fn probe_candidates(mut self, candidates: usize) -> Self {
        self.probe_candidates = candidates;
        self
    }

    /// Maximum resident per-graph environments (default 16). Generated
    /// sources draw unboundedly many distinct graphs; the pool evicts FIFO
    /// and deterministically rebuilds an evicted graph's environment (same
    /// derived seed, fresh cache) if it is drawn again, so the capacity is
    /// part of the reproducibility config.
    pub fn pool_capacity(mut self, capacity: usize) -> Self {
        self.pool_capacity = capacity;
        self
    }

    /// Validates the whole configuration and builds the [`Trainer`].
    pub fn build(self) -> Result<Trainer, ConfigError> {
        let cfg = &self.cfg;
        if cfg.minibatch == 0 {
            return Err(ConfigError::ZeroMinibatch);
        }
        if cfg.total_samples == 0 {
            return Err(ConfigError::ZeroTotalSamples);
        }
        match cfg.algo {
            Algo::Reinforce => {}
            Algo::Ppo => {
                if cfg.ppo_epochs == 0 {
                    return Err(ConfigError::ZeroPpoEpochs);
                }
            }
            Algo::PpoCe => {
                if cfg.ppo_epochs == 0 {
                    return Err(ConfigError::ZeroPpoEpochs);
                }
                if cfg.ce_interval == 0 || cfg.ce_elites == 0 || cfg.ce_steps == 0 {
                    return Err(ConfigError::BadCeSchedule {
                        interval: cfg.ce_interval,
                        elites: cfg.ce_elites,
                        steps: cfg.ce_steps,
                    });
                }
            }
        }
        if cfg.use_baseline && !(cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0) {
            return Err(ConfigError::BadEmaAlpha(cfg.ema_alpha));
        }
        if !cfg.optim.lr.is_finite() || cfg.optim.lr <= 0.0 {
            return Err(ConfigError::BadLearningRate(cfg.optim.lr));
        }
        if !cfg.invalid_penalty_time.is_finite() || cfg.invalid_penalty_time < 0.0 {
            return Err(ConfigError::BadInvalidPenalty(cfg.invalid_penalty_time));
        }
        match (cfg.checkpoint_every, &cfg.checkpoint_dir) {
            (Some(0), _) => return Err(ConfigError::ZeroCheckpointEvery),
            (Some(_), None) => return Err(ConfigError::CheckpointEveryWithoutDir),
            _ => {}
        }
        self.source.validate_holdout(self.holdout)?;
        match self.probe_every {
            Some(0) => return Err(ConfigError::ZeroProbeEvery),
            Some(_) if self.holdout == 0 => return Err(ConfigError::ProbeWithoutHoldout),
            _ => {}
        }
        if self.probe_candidates == 0 {
            return Err(ConfigError::ZeroProbeCandidates);
        }
        if self.pool_capacity == 0 {
            return Err(ConfigError::ZeroPoolCapacity);
        }
        Ok(Trainer {
            source: self.source,
            machine: self.machine,
            cfg: self.cfg,
            measure: self.measure,
            env_seed: self.env_seed,
            cache_capacity: self.cache_capacity,
            recorder: self.recorder,
            holdout: self.holdout,
            probe_every: self.probe_every,
            probe_candidates: self.probe_candidates,
            pool_capacity: self.pool_capacity,
        })
    }
}

/// A validated training driver over a [`GraphSource`] and a [`Machine`]. See
/// the module docs; construct with [`Trainer::builder`].
#[derive(Debug)]
pub struct Trainer {
    source: GraphSource,
    machine: Machine,
    cfg: TrainerConfig,
    measure: MeasureConfig,
    env_seed: u64,
    cache_capacity: Option<usize>,
    recorder: Recorder,
    holdout: usize,
    probe_every: Option<usize>,
    probe_candidates: usize,
    pool_capacity: usize,
}

impl Trainer {
    /// Starts building a trainer over `source` and `machine`.
    pub fn builder(source: GraphSource, machine: Machine) -> TrainerBuilder {
        TrainerBuilder {
            source,
            machine,
            cfg: TrainerConfig::paper(Algo::Ppo, 1000),
            measure: MeasureConfig::default(),
            env_seed: 0,
            cache_capacity: None,
            recorder: Recorder::disabled(),
            holdout: 0,
            probe_every: None,
            probe_candidates: 4,
            pool_capacity: 16,
        }
    }

    /// The validated training configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// The graph source driving the run.
    pub fn source(&self) -> &GraphSource {
        &self.source
    }

    /// The machine placements are measured on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The held-out graphs of the train/holdout split, in holdout order —
    /// what zero-shot probes and transfer benches evaluate against.
    pub fn holdout_graphs(&self) -> Vec<(String, OpGraph)> {
        self.source
            .holdout_origins(self.holdout)
            .iter()
            .map(|o| (self.source.name(o), self.source.build(o)))
            .collect()
    }

    /// Runs the full training loop of `agent`, starting fresh.
    ///
    /// Each minibatch draws one graph from the source, then is sampled and
    /// decoded as *one* batched forward pass
    /// ([`StochasticPolicy::sample_batch`](eagle_rl::StochasticPolicy::sample_batch)
    /// / [`PlacementAgent::decode_batch`]) over per-episode RNG streams forked
    /// off the seeded trainer RNG with [`eagle_rl::fork_streams`]. Batching is
    /// bit-identical to the per-episode path and the master RNG advances
    /// exactly as a serial sampling loop would, so the action sequences — and
    /// therefore the curve, the trained policy and the best placement — are
    /// bit-identical for every `cfg.workers` value and across checkpoint
    /// resumes.
    ///
    /// With `cfg.checkpoint_every` and `cfg.checkpoint_dir` both set, the loop
    /// additionally saves a resumable [`TrainerState`] every *k* minibatches;
    /// pass a loaded state to [`Trainer::train_from`] to continue
    /// bit-identically.
    pub fn train<A: PlacementAgent>(
        &self,
        agent: &A,
        params: &mut Params,
    ) -> Result<TrainResult, TrainError> {
        let state = LoopState {
            rng: ChaCha8Rng::seed_from_u64(self.cfg.seed),
            cursor: self.source.initial_cursor(),
            pool: Vec::new(),
            retired: EnvSnapshot::default(),
            wall: 0.0,
            curve: Curve::new(agent.name()),
            history_actions: VecDeque::new(),
            history_rewards: VecDeque::new(),
            since_ce: 0,
            num_invalid: 0,
            samples: 0,
            minibatches: 0,
            start: EnvSnapshot::default(),
            restored_opts: None,
        };
        self.run_loop(agent, params, state)
    }

    /// Resumes training from a checkpointed [`TrainerState`].
    ///
    /// The caller reconstructs the immutable inputs exactly as the original
    /// run did — same agent architecture and scale, same source, machine,
    /// measurement config and `cfg` — and this function restores every mutable
    /// piece: parameters, the three optimizers' moments, the trainer RNG
    /// position, the source cursor, the CE history window, the curve, and
    /// every pooled per-graph environment (noise RNG, placement cache,
    /// wall-clock, counters, baseline, best). The continuation is
    /// bit-identical to the uninterrupted run (locked by
    /// `tests/checkpoint_resume.rs`).
    ///
    /// Fails with a typed [`TrainError`] — never a panic — when the state does
    /// not fit the given agent, parameter layout, or source; on failure
    /// `params` is left unmodified.
    pub fn train_from<A: PlacementAgent>(
        &self,
        agent: &A,
        params: &mut Params,
        state: TrainerState,
    ) -> Result<TrainResult, TrainError> {
        if state.curve.label != agent.name() {
            return Err(ResumeError::AgentMismatch {
                checkpoint: state.curve.label.clone(),
                agent: agent.name().to_string(),
            }
            .into());
        }
        check_param_layout(params, &state.params)?;
        let rng = state.rng.restore().map_err(ResumeError::Rng)?;
        let cursor = SourceCursor::restore(&state.source).map_err(ResumeError::Source)?;

        let mut pool = Vec::with_capacity(state.entries.len());
        for entry in &state.entries {
            if !self.source.owns(&entry.origin) {
                return Err(ResumeError::SourceMismatch(format!(
                    "checkpointed graph '{}' ({:?}) cannot be rebuilt by {:?}",
                    entry.name, entry.origin.kind, self.source
                ))
                .into());
            }
            let graph = self.source.build(&entry.origin);
            let view = self.make_view(agent, &graph)?;
            let mut env = self.build_env(&entry.origin, graph)?;
            env.restore_state(&entry.env).map_err(ResumeError::Env)?;
            pool.push(PoolEntry {
                origin: entry.origin,
                name: entry.name.clone(),
                env,
                baseline: entry.baseline.clone(),
                best: entry.best.clone(),
                graph_samples: entry.graph_samples,
                view,
            });
        }
        *params = state.params;

        let loop_state = LoopState {
            rng,
            cursor,
            pool,
            retired: state.retired_snapshot,
            wall: state.wall,
            curve: state.curve,
            history_actions: state.history_actions.into(),
            history_rewards: state.history_rewards.into(),
            since_ce: state.since_ce as usize,
            num_invalid: state.num_invalid as usize,
            samples: state.samples as usize,
            minibatches: state.minibatches,
            start: state.start_snapshot,
            restored_opts: Some((state.opt_reinforce, state.opt_ppo, state.opt_ce)),
        };
        self.run_loop(agent, params, loop_state)
    }

    /// Builds the environment for one drawn graph. Fixed sources use
    /// `env_seed` verbatim (bit-identical to the classic single-env trainer);
    /// other sources derive a per-graph seed so each graph has its own
    /// deterministic noise stream.
    fn build_env(&self, origin: &GraphOrigin, graph: OpGraph) -> Result<Environment, EnvError> {
        let seed = if self.source.is_fixed() {
            self.env_seed
        } else {
            splitmix64(self.env_seed ^ splitmix64(origin.key))
        };
        let mut builder = Environment::builder(graph, self.machine.clone())
            .seed(seed)
            .measure(self.measure.clone())
            .recorder(self.recorder.clone());
        if let Some(capacity) = self.cache_capacity {
            builder = builder.cache_capacity(capacity);
        }
        builder.build()
    }

    /// Per-graph agent view: `None` (use the caller's agent directly) for
    /// fixed sources, a [`PlacementAgent::for_graph`] re-target otherwise.
    fn make_view<A: PlacementAgent>(
        &self,
        agent: &A,
        graph: &OpGraph,
    ) -> Result<Option<A>, TrainError> {
        if self.source.is_fixed() {
            return Ok(None);
        }
        match agent.for_graph(graph) {
            Some(view) => Ok(Some(view)),
            None => Err(TrainError::UnsupportedAgent { agent: agent.name().to_string() }),
        }
    }

    /// Returns the pool index for `origin`, creating (and possibly evicting)
    /// an entry if the graph is not resident.
    fn ensure_entry<A: PlacementAgent>(
        &self,
        agent: &A,
        st: &mut LoopState<A>,
        origin: &GraphOrigin,
    ) -> Result<usize, TrainError> {
        if let Some(i) = st.pool.iter().position(|e| e.origin == *origin) {
            return Ok(i);
        }
        let graph = self.source.build(origin);
        let view = self.make_view(agent, &graph)?;
        let env = self.build_env(origin, graph)?;
        st.pool.push(PoolEntry {
            origin: *origin,
            name: self.source.name(origin),
            env,
            baseline: EmaBaseline::new(self.cfg.ema_alpha),
            best: None,
            graph_samples: 0,
            view,
        });
        if st.pool.len() > self.pool_capacity {
            let evicted = st.pool.remove(0);
            add_snapshot(&mut st.retired, &evicted.env.snapshot());
            self.recorder.add("trainer.pool_evictions", 1);
        }
        Ok(st.pool.len() - 1)
    }

    /// The shared minibatch loop behind [`Trainer::train`] and
    /// [`Trainer::train_from`].
    fn run_loop<A: PlacementAgent>(
        &self,
        agent: &A,
        params: &mut Params,
        mut st: LoopState<A>,
    ) -> Result<TrainResult, TrainError> {
        let cfg = &self.cfg;
        let host_start = std::time::Instant::now();
        let samples_at_entry = st.samples;
        let rec = self.recorder.clone();
        let workers = eagle_devsim::resolve_workers(cfg.workers);

        let mut reinforce = Reinforce::new(cfg.optim.clone()).with_recorder(rec.clone());
        let mut ppo =
            Ppo::new(cfg.optim.clone(), cfg.ppo_clip, cfg.ppo_epochs).with_recorder(rec.clone());
        let mut ce =
            CrossEntropyMin::new(cfg.optim.clone(), cfg.ce_steps).with_recorder(rec.clone());
        if let Some((r, p, c)) = st.restored_opts.take() {
            reinforce.restore_optimizer(r);
            ppo.restore_optimizer(p);
            ce.restore_optimizer(c);
        }

        // Held-out graphs and their agent views, built once up front: probes
        // must not depend on (or perturb) any training state.
        let probes: Vec<(String, OpGraph, A)> = match self.probe_every {
            None => Vec::new(),
            Some(_) => {
                let mut out = Vec::new();
                for origin in self.source.holdout_origins(self.holdout) {
                    let graph = self.source.build(&origin);
                    let view = agent.for_graph(&graph).ok_or_else(|| {
                        TrainError::UnsupportedAgent { agent: agent.name().to_string() }
                    })?;
                    out.push((self.source.name(&origin), graph, view));
                }
                out
            }
        };

        // CE elite pool: a rolling window so memory (and checkpoint size) stays
        // bounded on long runs, but never smaller than one CE interval.
        let window = cfg.history_window.max(cfg.ce_interval).max(cfg.ce_elites);

        while st.samples < cfg.total_samples {
            let batch_size = cfg.minibatch.min(cfg.total_samples - st.samples);
            rec.add("trainer.minibatches", 1);

            // Draw this minibatch's graph and make it resident. Fixed sources
            // consume no source randomness here, so single-graph streams are
            // unchanged from the classic trainer.
            let origin = self.source.draw_train(&mut st.cursor, self.holdout);
            let idx = self.ensure_entry(agent, &mut st, &origin)?;
            let PoolEntry { env, view, baseline, best, graph_samples, .. } = &mut st.pool[idx];
            let acting: &A = view.as_ref().unwrap_or(agent);

            // Phase A (seeded): draw the minibatch's action sequences in one
            // batched forward pass. Each episode samples from its own stream
            // forked off the trainer RNG; `fork_streams` advances the master RNG
            // past exactly the draws a serial per-episode loop would consume, so
            // the action stream — and the checkpointed RNG position — is
            // bit-identical to per-episode sampling. `rng_draws_per_sample` is
            // graph-independent, so the accounting is uniform across graphs.
            let sample_span = rec.span("trainer.sample_us");
            let mut streams =
                eagle_rl::fork_streams(&mut st.rng, agent.rng_draws_per_sample(), batch_size);
            let mut rng_refs: Vec<&mut dyn rand::RngCore> =
                streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
            let drawn = acting.sample_batch(params, &mut rng_refs);
            drop(sample_span);
            let (actions_batch, old_log_probs): (Vec<Vec<usize>>, Vec<f32>) =
                drawn.into_iter().unzip();

            // Phase B: decode actions into placements — one batched pass, so
            // parameter-dependent decode state (EAGLE's grouper forward) is
            // computed once per minibatch instead of once per episode.
            let decode_span = rec.span("trainer.decode_us");
            let placements: Vec<Placement> = acting.decode_batch(params, &actions_batch);
            drop(decode_span);

            // Phase C: evaluate the minibatch in this graph's environment
            // (cache probes and noise serial, cache-miss simulations parallel —
            // see `Environment::evaluate_batch`).
            let evaluate_span = rec.span("trainer.evaluate_us");
            let measurements = env.evaluate_batch(&placements, workers);
            drop(evaluate_span);
            // Rebuild the per-episode wall-clock by accumulating costs in episode
            // order — the same float additions the serial loop performs, so curve
            // x-values are bit-identical.
            let mut wall = st.wall;

            // Phase D (serial): rewards, baseline, curve, policy update — in
            // episode order.
            let update_span = rec.span("trainer.update_us");
            let mut batch: Vec<TrainSample> = Vec::with_capacity(batch_size);
            for (((actions, old_log_prob), placement), meas) in
                actions_batch.into_iter().zip(old_log_probs).zip(&placements).zip(&measurements)
            {
                st.samples += 1;
                st.since_ce += 1;
                *graph_samples += 1;
                let reward = match meas.step_time {
                    Some(t) => {
                        if best.as_ref().is_none_or(|(b, _)| t < *b) {
                            *best = Some((t, placement.clone()));
                        }
                        cfg.reward.apply(t)
                    }
                    None => {
                        st.num_invalid += 1;
                        cfg.reward.apply(cfg.invalid_penalty_time)
                    }
                };
                wall += meas.wall_cost;
                st.curve.push(st.samples as u64, wall, meas.step_time);
                let advantage = if cfg.use_baseline {
                    baseline.advantage(reward) as f32
                } else {
                    reward as f32
                };
                st.history_actions.push_back(actions.clone());
                st.history_rewards.push_back(reward);
                batch.push(TrainSample { actions, old_log_prob, advantage });
            }
            st.wall = wall;

            if cfg.normalize_adv && batch.len() > 1 {
                let mean = batch.iter().map(|s| s.advantage).sum::<f32>() / batch.len() as f32;
                let var = batch.iter().map(|s| (s.advantage - mean).powi(2)).sum::<f32>()
                    / batch.len() as f32;
                let std = var.sqrt().max(1e-6);
                for s in &mut batch {
                    s.advantage /= std;
                }
            }

            // Score/update through the same per-graph view that sampled, so
            // log-probs are computed against this minibatch's graph features.
            match cfg.algo {
                Algo::Reinforce => {
                    reinforce.update(acting, params, &batch);
                }
                Algo::Ppo => {
                    ppo.update(acting, params, &batch);
                }
                Algo::PpoCe => {
                    ppo.update(acting, params, &batch);
                    if st.since_ce >= cfg.ce_interval {
                        st.since_ce = 0;
                        let rewards: &[f64] = st.history_rewards.make_contiguous();
                        let top = top_k_indices(rewards, cfg.ce_elites);
                        let elites: Vec<Vec<usize>> =
                            top.iter().map(|&i| st.history_actions[i].clone()).collect();
                        ce.update(acting, params, &elites);
                    }
                }
            }
            drop(update_span);

            // End of minibatch: trim the history window, probe, then
            // (optionally) checkpoint — trimming first keeps the on-disk state
            // identical to the in-memory state a resume will rebuild, and
            // probing first lets checkpoints carry their probe points.
            while st.history_actions.len() > window {
                st.history_actions.pop_front();
                st.history_rewards.pop_front();
            }
            st.minibatches += 1;

            if let Some(every) = self.probe_every {
                if st.minibatches.is_multiple_of(every as u64) {
                    self.run_probes(&probes, params, &mut st, &rec);
                }
            }

            if let (Some(every), Some(dir)) = (cfg.checkpoint_every, &cfg.checkpoint_dir) {
                if st.minibatches.is_multiple_of(every as u64) {
                    let snapshot = TrainerState {
                        samples: st.samples as u64,
                        minibatches: st.minibatches,
                        num_invalid: st.num_invalid as u64,
                        since_ce: st.since_ce as u64,
                        rng: RngState::capture(&st.rng),
                        source: st.cursor.capture(),
                        wall: st.wall,
                        history_actions: st.history_actions.iter().cloned().collect(),
                        history_rewards: st.history_rewards.iter().copied().collect(),
                        curve: st.curve.clone(),
                        params: params.clone(),
                        opt_reinforce: reinforce.optimizer().clone(),
                        opt_ppo: ppo.optimizer().clone(),
                        opt_ce: ce.optimizer().clone(),
                        entries: st
                            .pool
                            .iter()
                            .map(|e| GraphEntryState {
                                origin: e.origin,
                                name: e.name.clone(),
                                env: e.env.save_state(),
                                baseline: e.baseline.clone(),
                                best: e.best.clone(),
                                graph_samples: e.graph_samples,
                            })
                            .collect(),
                        retired_snapshot: st.retired,
                        start_snapshot: st.start,
                    };
                    let save = std::fs::create_dir_all(dir)
                        .map_err(|e| crate::checkpoint::CheckpointError::Io(e).to_string())
                        .and_then(|()| {
                            save_checkpoint(&snapshot, dir.join(CHECKPOINT_FILE))
                                .map_err(|e| e.to_string())
                        });
                    match save {
                        Ok(()) => rec.add("trainer.checkpoints", 1),
                        Err(e) => {
                            rec.add("trainer.checkpoint_errors", 1);
                            eprintln!("warning: checkpoint save to {} failed: {e}", dir.display());
                        }
                    }
                }
            }
        }

        // Final 1,000-step measurement of the best placement (paper protocol) —
        // single-graph sources only; a multi-graph run reports per-graph bests
        // in `TrainResult::graphs` instead.
        let (best_placement, final_step_time) = match st.pool.first_mut() {
            Some(entry) if self.source.is_fixed() => match entry.best.clone() {
                Some((_, p)) => {
                    let t = entry.env.evaluate_final(&p);
                    (Some(p), t)
                }
                None => (None, None),
            },
            _ => (None, None),
        };

        let mut total = st.retired;
        for e in &st.pool {
            add_snapshot(&mut total, &e.env.snapshot());
        }
        let run = total.since(&st.start);
        let elapsed = host_start.elapsed().as_secs_f64();
        let samples_this_process = st.samples - samples_at_entry;
        let telemetry = Telemetry {
            episodes_per_sec: if elapsed > 0.0 {
                samples_this_process as f64 / elapsed
            } else {
                0.0
            },
            evals: run.evals,
            invalid_evals: run.invalid_evals,
            cache_hits: run.cache.hits,
            cache_misses: run.cache.misses,
            cache_evictions: run.cache.evictions,
            cache_hit_rate: run.cache.hit_rate(),
            sim_wall_clock: run.wall_clock,
            workers,
        };
        st.curve.telemetry = Some(telemetry);

        let graphs = st
            .pool
            .iter()
            .map(|e| GraphSummary {
                name: e.name.clone(),
                origin: e.origin,
                samples: e.graph_samples,
                best_step_time: e.best.as_ref().map(|(t, _)| *t),
            })
            .collect();

        Ok(TrainResult {
            best_placement,
            final_step_time,
            curve: st.curve,
            num_invalid: st.num_invalid,
            samples: st.samples,
            graphs,
            telemetry,
        })
    }

    /// Zero-shot probe pass over the held-out graphs: sample
    /// `probe_candidates` placements per graph from a probe-local RNG, decode,
    /// score with the pure (noise-free) simulator, and record the best into
    /// the curve. Touches no training state — not the trainer RNG, not the
    /// environments — so probing on/off leaves training bit-identical.
    fn run_probes<A: PlacementAgent>(
        &self,
        probes: &[(String, OpGraph, A)],
        params: &Params,
        st: &mut LoopState<A>,
        rec: &Recorder,
    ) {
        let span = rec.span("trainer.probe_us");
        for (hi, (name, graph, view)) in probes.iter().enumerate() {
            let mut rng =
                ChaCha8Rng::seed_from_u64(probe_seed(self.cfg.seed, st.minibatches, hi as u64));
            let mut streams = eagle_rl::fork_streams(
                &mut rng,
                view.rng_draws_per_sample(),
                self.probe_candidates,
            );
            let mut rng_refs: Vec<&mut dyn rand::RngCore> =
                streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
            let actions: Vec<Vec<usize>> =
                view.sample_batch(params, &mut rng_refs).into_iter().map(|(a, _)| a).collect();
            let step_time = view
                .decode_batch(params, &actions)
                .iter()
                .filter_map(|p| simulate(graph, &self.machine, p).step_time())
                .fold(None, |best: Option<f64>, t| Some(best.map_or(t, |b| b.min(t))));
            st.curve.probes.push(ProbePoint {
                sample: st.samples as u64,
                graph: name.clone(),
                step_time,
            });
        }
        rec.add("trainer.probes", 1);
        drop(span);
    }
}

/// Deterministic probe RNG seed: independent of the trainer RNG stream, unique
/// per (config seed, minibatch, holdout graph).
fn probe_seed(seed: u64, minibatch: u64, holdout_index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(minibatch.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ holdout_index))
}

/// Accumulates one environment's counters into a running total (used for the
/// retired-environment snapshot and run telemetry).
fn add_snapshot(total: &mut EnvSnapshot, s: &EnvSnapshot) {
    total.evals += s.evals;
    total.invalid_evals += s.invalid_evals;
    total.wall_clock += s.wall_clock;
    total.cache.hits += s.cache.hits;
    total.cache.misses += s.cache.misses;
    total.cache.evictions += s.cache.evictions;
}

/// Rejects a resume whose checkpointed parameters were built by a different
/// architecture than the live agent's (count, names, or shapes differ).
fn check_param_layout(current: &Params, saved: &Params) -> Result<(), ResumeError> {
    if current.len() != saved.len() {
        return Err(ResumeError::ParamMismatch(format!(
            "checkpoint has {} tensors, agent built {}",
            saved.len(),
            current.len()
        )));
    }
    for id in current.ids() {
        if current.name(id) != saved.name(id) {
            return Err(ResumeError::ParamMismatch(format!(
                "tensor {} is '{}' in the checkpoint but '{}' in the agent",
                id.index(),
                saved.name(id),
                current.name(id)
            )));
        }
        if current.get(id).shape() != saved.get(id).shape() {
            return Err(ResumeError::ParamMismatch(format!(
                "tensor '{}' is {:?} in the checkpoint but {:?} in the agent",
                current.name(id),
                saved.get(id).shape(),
                current.get(id).shape()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{EagleAgent, FixedGroupAgent, PlacerKind};
    use crate::checkpoint::load_checkpoint;
    use crate::scale::AgentScale;
    use eagle_opgraph::builders;

    fn tiny_graph() -> OpGraph {
        builders::try_gnmt(&builders::GnmtConfig {
            batch: 2,
            hidden: 4,
            layers: 2,
            seq_len: 3,
            vocab: 20,
        })
        .expect("valid tiny gnmt")
    }

    fn tiny_trainer(cfg: TrainerConfig) -> (OpGraph, Machine, Trainer) {
        let g = tiny_graph();
        let m = Machine::paper_machine();
        let trainer = Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
            .config(cfg)
            .measure(MeasureConfig::exact())
            .env_seed(3)
            .build()
            .expect("valid tiny trainer");
        (g, m, trainer)
    }

    #[test]
    fn training_improves_over_first_samples() {
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 120);
        cfg.optim.lr = 0.05; // tiny nets: faster convergence for the test
        let (g, m, trainer) = tiny_trainer(cfg);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let result = trainer.train(&agent, &mut params).expect("training runs");
        assert_eq!(result.samples, 120);
        assert_eq!(result.curve.points.len(), 120);
        assert_eq!(result.graphs.len(), 1);
        assert_eq!(result.graphs[0].samples, 120);
        let t = result.final_step_time.expect("found a valid placement");
        // The first sampled placement is essentially random; training must do
        // at least as well, and the curve's best must be monotone.
        let first = result.curve.points[0].measured.unwrap_or(f64::INFINITY);
        assert!(t <= first * 1.01, "final {t} should not be worse than first {first}");
        let mut prev = f64::INFINITY;
        for p in &result.curve.points {
            if let Some(b) = p.best_so_far {
                assert!(b <= prev + 1e-12);
                prev = b;
            }
        }
    }

    #[test]
    fn all_algorithms_run() {
        for algo in [Algo::Reinforce, Algo::Ppo, Algo::PpoCe] {
            let mut cfg = TrainerConfig::paper(algo, 60);
            cfg.ce_interval = 20;
            let (g, m, trainer) = tiny_trainer(cfg);
            let mut params = Params::new();
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let group_of: Vec<usize> = (0..g.len()).map(|i| i * 4 / g.len()).collect();
            let agent = FixedGroupAgent::new(
                &mut params,
                "t",
                &g,
                &m,
                group_of,
                4,
                PlacerKind::Simple,
                AgentScale::tiny(),
                &mut rng,
            );
            let result = trainer.train(&agent, &mut params).expect("training runs");
            assert_eq!(result.samples, 60, "{algo:?}");
            assert!(result.final_step_time.is_some(), "{algo:?}");
        }
    }

    #[test]
    fn wall_clock_monotone_in_curve() {
        let (g, m, trainer) = tiny_trainer(TrainerConfig::paper(Algo::Ppo, 30));
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let result = trainer.train(&agent, &mut params).expect("training runs");
        let mut prev = 0.0;
        for p in &result.curve.points {
            assert!(p.wall_clock >= prev);
            prev = p.wall_clock;
        }
    }

    #[test]
    fn history_window_bounds_memory() {
        // A window smaller than the run length must not change short-run
        // behaviour for non-CE algos, and the checkpoint must carry at most
        // `max(history_window, ce_interval, ce_elites)` samples.
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 80);
        cfg.history_window = 1; // effective window = ce_interval = 50
        let dir = std::env::temp_dir().join("eagle-trainer-window-test");
        std::fs::create_dir_all(&dir).unwrap();
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = Some(1);
        let (g, m, trainer) = tiny_trainer(cfg);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let result = trainer.train(&agent, &mut params).expect("training runs");
        assert_eq!(result.samples, 80);
        let state = load_checkpoint(dir.join(CHECKPOINT_FILE)).unwrap();
        assert_eq!(state.history_actions.len(), 50, "window clamps to ce_interval");
        assert_eq!(state.history_rewards.len(), 50);
        assert_eq!(state.samples, 80);
        assert_eq!(state.entries.len(), 1, "fixed source pools one environment");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_wrong_agent_and_params() {
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 20);
        let dir = std::env::temp_dir().join("eagle-trainer-reject-test");
        std::fs::create_dir_all(&dir).unwrap();
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = Some(1);
        let (g, m, trainer) = tiny_trainer(cfg);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        trainer.train(&agent, &mut params).expect("training runs");
        let state = load_checkpoint(dir.join(CHECKPOINT_FILE)).unwrap();

        // Different agent type: label mismatch.
        let mut other_params = Params::new();
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let group_of: Vec<usize> = (0..g.len()).map(|i| i * 2 / g.len()).collect();
        let other = FixedGroupAgent::new(
            &mut other_params,
            "other",
            &g,
            &m,
            group_of,
            2,
            PlacerKind::Simple,
            AgentScale::tiny(),
            &mut rng2,
        );
        match trainer.train_from(&other, &mut other_params, state.clone()) {
            Err(TrainError::Resume(ResumeError::AgentMismatch { .. })) => {}
            other => panic!("expected AgentMismatch, got {other:?}"),
        }

        // Same agent type at a different scale: parameter layout mismatch.
        let mut big_params = Params::new();
        let mut rng3 = ChaCha8Rng::seed_from_u64(5);
        let big = EagleAgent::new(&mut big_params, &g, &m, AgentScale::quick(), &mut rng3);
        match trainer.train_from(&big, &mut big_params, state) {
            Err(TrainError::Resume(ResumeError::ParamMismatch(_))) => {}
            other => panic!("expected ParamMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let g = tiny_graph();
        let m = Machine::paper_machine();
        let build = |mutate: &dyn Fn(&mut TrainerConfig)| {
            let mut cfg = TrainerConfig::paper(Algo::PpoCe, 10);
            mutate(&mut cfg);
            Trainer::builder(GraphSource::fixed(g.clone()), m.clone()).config(cfg).build()
        };
        assert_eq!(build(&|c| c.minibatch = 0).unwrap_err(), ConfigError::ZeroMinibatch);
        assert_eq!(build(&|c| c.total_samples = 0).unwrap_err(), ConfigError::ZeroTotalSamples);
        assert!(matches!(
            build(&|c| c.ce_interval = 0).unwrap_err(),
            ConfigError::BadCeSchedule { interval: 0, .. }
        ));
        assert!(matches!(
            build(&|c| c.ce_elites = 0).unwrap_err(),
            ConfigError::BadCeSchedule { elites: 0, .. }
        ));
        assert_eq!(build(&|c| c.ppo_epochs = 0).unwrap_err(), ConfigError::ZeroPpoEpochs);
        assert_eq!(build(&|c| c.ema_alpha = 0.0).unwrap_err(), ConfigError::BadEmaAlpha(0.0));
        assert_eq!(build(&|c| c.optim.lr = 0.0).unwrap_err(), ConfigError::BadLearningRate(0.0));
        assert!(matches!(
            build(&|c| c.invalid_penalty_time = f64::NAN).unwrap_err(),
            ConfigError::BadInvalidPenalty(_)
        ));
        assert_eq!(
            build(&|c| c.checkpoint_every = Some(0)).unwrap_err(),
            ConfigError::ZeroCheckpointEvery
        );
        assert_eq!(
            build(&|c| c.checkpoint_every = Some(5)).unwrap_err(),
            ConfigError::CheckpointEveryWithoutDir
        );
        // ce_interval = 0 is fine for algorithms that never run CE.
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 10);
        cfg.ce_interval = 0;
        assert!(Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
            .config(cfg)
            .build()
            .is_ok());
        // Probe/holdout cross-validation.
        assert!(matches!(
            Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
                .config(TrainerConfig::paper(Algo::Ppo, 10))
                .holdout(1)
                .build()
                .unwrap_err(),
            ConfigError::Source(SourceError::HoldoutUnsupported)
        ));
        assert_eq!(
            Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
                .config(TrainerConfig::paper(Algo::Ppo, 10))
                .probe_every(5)
                .build()
                .unwrap_err(),
            ConfigError::ProbeWithoutHoldout
        );
        assert_eq!(
            Trainer::builder(GraphSource::fixed(g.clone()), m.clone())
                .config(TrainerConfig::paper(Algo::Ppo, 10))
                .pool_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroPoolCapacity
        );
    }

    #[test]
    fn multi_graph_training_pools_environments() {
        let g = tiny_graph();
        let roster = GraphSource::roster(vec![
            ("a".into(), g.clone()),
            ("b".into(), g.clone()),
            ("c".into(), g.clone()),
        ])
        .unwrap();
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 60);
        cfg.minibatch = 5;
        let trainer = Trainer::builder(roster, Machine::paper_machine())
            .config(cfg)
            .measure(MeasureConfig::exact())
            .env_seed(3)
            .holdout(1)
            .build()
            .expect("valid multi-graph trainer");
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let agent = EagleAgent::new(
            &mut params,
            &g,
            &Machine::paper_machine(),
            AgentScale::tiny(),
            &mut rng,
        );
        let result = trainer.train(&agent, &mut params).expect("training runs");
        assert_eq!(result.samples, 60);
        // Held-out graph "c" never trains; "a" and "b" round-robin.
        assert_eq!(result.graphs.len(), 2);
        assert!(result.graphs.iter().all(|s| s.name != "c"));
        assert_eq!(result.graphs.iter().map(|s| s.samples).sum::<u64>(), 60);
        assert!(result.best_placement.is_none(), "multi-graph runs report per-graph bests");
        assert_eq!(trainer.holdout_graphs().len(), 1);
        assert_eq!(trainer.holdout_graphs()[0].0, "c");
    }

    #[test]
    fn unsupported_agent_gets_typed_error() {
        let g = tiny_graph();
        let m = Machine::paper_machine();
        let roster =
            GraphSource::roster(vec![("a".into(), g.clone()), ("b".into(), g.clone())]).unwrap();
        let trainer = Trainer::builder(roster, m.clone())
            .config(TrainerConfig::paper(Algo::Ppo, 10))
            .measure(MeasureConfig::exact())
            .build()
            .unwrap();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let group_of: Vec<usize> = (0..g.len()).map(|i| i * 2 / g.len()).collect();
        let agent = FixedGroupAgent::new(
            &mut params,
            "fixed",
            &g,
            &m,
            group_of,
            2,
            PlacerKind::Simple,
            AgentScale::tiny(),
            &mut rng,
        );
        match trainer.train(&agent, &mut params) {
            Err(TrainError::UnsupportedAgent { agent }) => assert_eq!(agent, "fixed"),
            other => panic!("expected UnsupportedAgent, got {other:?}"),
        }
    }

    #[test]
    fn algo_labels() {
        assert_eq!(Algo::Reinforce.label(), "REINFORCE");
        assert_eq!(Algo::Ppo.label(), "PPO");
        assert_eq!(Algo::PpoCe.label(), "PPO+CE");
    }
}
