//! The training driver: samples placements from an agent, measures them in the
//! environment, shapes rewards, and applies the selected RL algorithm — the outer
//! loop of every experiment in the paper.
//!
//! The loop is *resumable*: [`train`] starts fresh, [`train_from`] continues from
//! a [`TrainerState`] captured at a minibatch boundary (see
//! [`crate::checkpoint`]), and the two compose bit-identically — a run killed
//! after minibatch *k* and resumed produces the same curve, parameters and best
//! placement as an uninterrupted run with the same seed.

use std::collections::VecDeque;

use eagle_devsim::{EnvSnapshot, EnvStateError, Environment, Placement, RngState};
use eagle_rl::{
    top_k_indices, CrossEntropyMin, EmaBaseline, OptimConfig, Ppo, Reinforce, RewardTransform,
    TrainSample,
};
use eagle_tensor::optim::Adam;
use eagle_tensor::Params;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use eagle_obs::Telemetry;

use crate::agents::PlacementAgent;
use crate::checkpoint::{save_checkpoint, TrainerState, CHECKPOINT_FILE};
use crate::curve::Curve;

/// Which training algorithm drives the agent (paper Sec. III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Plain REINFORCE with the EMA baseline.
    Reinforce,
    /// Clipped-surrogate PPO (the paper's pick for EAGLE).
    Ppo,
    /// PPO joined with cross-entropy minimization (Post's algorithm;
    /// also `EAGLE (PPO+CE)` in Table IV).
    PpoCe,
}

impl Algo {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Reinforce => "REINFORCE",
            Algo::Ppo => "PPO",
            Algo::PpoCe => "PPO+CE",
        }
    }
}

/// Trainer configuration (defaults = paper Sec. IV-C).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Total placements to sample.
    pub total_samples: usize,
    /// Samples per policy update (paper: 10).
    pub minibatch: usize,
    /// Optimizer settings (paper: Adam lr 0.01, clip 1.0, entropy 0.01).
    pub optim: OptimConfig,
    /// PPO clip ratio (paper: 0.3).
    pub ppo_clip: f32,
    /// PPO epochs per minibatch (paper: 4).
    pub ppo_epochs: usize,
    /// Samples between cross-entropy updates (paper: 50).
    pub ce_interval: usize,
    /// Number of elite samples per CE update (paper: 5).
    pub ce_elites: usize,
    /// Gradient steps per CE update.
    pub ce_steps: usize,
    /// EMA weight for the reward baseline.
    pub ema_alpha: f64,
    /// Per-step time charged to invalid (OOM) placements when shaping rewards.
    pub invalid_penalty_time: f64,
    /// Reward transform applied to measured per-step times (paper: `-sqrt(t)`).
    pub reward: RewardTransform,
    /// Subtract the EMA baseline from rewards (paper: yes). Disable for ablation.
    pub use_baseline: bool,
    /// Normalize advantages to unit scale within each minibatch (standard PPO
    /// practice; makes learning robust to the absolute reward scale, which spans
    /// -sqrt(0.07) to -sqrt(100) across the three benchmarks).
    pub normalize_adv: bool,
    /// RNG seed (sampling).
    pub seed: u64,
    /// The algorithm.
    pub algo: Algo,
    /// Worker threads for the simulation side of the rollout engine (0 = one
    /// per available core, 1 = fully serial). Sampling and decoding run as one
    /// batched forward pass regardless of this setting; only cache-miss
    /// placement simulations fan out. The trained policy, curve and best
    /// placement are identical for every value — only host wall-time changes
    /// (see DESIGN.md, "Parallel rollout engine" and "Batched policy API").
    pub workers: usize,
    /// Rolling window (in samples) of the action/reward history kept for CE
    /// elite selection. The effective window is
    /// `max(history_window, ce_interval, ce_elites)`, so CE always sees at
    /// least one full interval. Bounding the history fixes the unbounded memory
    /// growth the earlier trainer had on long runs (it retained every sample of
    /// the run) and bounds checkpoint size.
    pub history_window: usize,
    /// Auto-checkpoint period in minibatches; requires `checkpoint_dir` to also
    /// be set. `None` (the default) disables auto-checkpointing.
    pub checkpoint_every: Option<usize>,
    /// Directory checkpoints are written into (as
    /// [`CHECKPOINT_FILE`](crate::checkpoint::CHECKPOINT_FILE)); created on
    /// first save. A failed save is logged and counted
    /// (`trainer.checkpoint_errors`), never fatal to the run.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl TrainerConfig {
    /// Paper hyper-parameters with the given sample budget and algorithm.
    pub fn paper(algo: Algo, total_samples: usize) -> Self {
        Self {
            total_samples,
            minibatch: 10,
            optim: OptimConfig::default(),
            ppo_clip: 0.3,
            ppo_epochs: 4,
            ce_interval: 50,
            ce_elites: 5,
            ce_steps: 4,
            ema_alpha: 0.1,
            invalid_penalty_time: 100.0,
            reward: RewardTransform::NegSqrt,
            use_baseline: true,
            normalize_adv: true,
            seed: 7,
            algo,
            workers: 0,
            history_window: 512,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Best placement found (if any valid placement was sampled).
    pub best_placement: Option<Placement>,
    /// Per-step time of the best placement under the *final* measurement protocol
    /// (1,000 steps), as the paper reports in its tables.
    pub final_step_time: Option<f64>,
    /// The training curve.
    pub curve: Curve,
    /// Number of invalid (OOM) samples encountered.
    pub num_invalid: usize,
    /// Total samples drawn.
    pub samples: usize,
    /// Run telemetry snapshot (also attached to `curve`).
    pub telemetry: Telemetry,
}

/// Why a [`TrainerState`] could not be applied to the given agent/params/env.
#[derive(Debug)]
pub enum ResumeError {
    /// The checkpoint was produced by a different agent (curve labels differ).
    AgentMismatch {
        /// Agent label recorded in the checkpoint.
        checkpoint: String,
        /// Label of the agent passed to [`train_from`].
        agent: String,
    },
    /// The checkpointed parameters do not match the agent's parameter layout.
    ParamMismatch(String),
    /// The checkpointed trainer RNG state is malformed.
    Rng(EnvStateError),
    /// The checkpointed environment state does not fit this environment.
    Env(EnvStateError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::AgentMismatch { checkpoint, agent } => write!(
                f,
                "checkpoint was trained with agent '{checkpoint}', cannot resume with '{agent}'"
            ),
            ResumeError::ParamMismatch(m) => write!(f, "parameter layout mismatch: {m}"),
            ResumeError::Rng(e) => write!(f, "trainer RNG state: {e}"),
            ResumeError::Env(e) => write!(f, "environment state: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// All mutable loop state, threaded through `run_loop` so fresh starts and
/// resumes share one code path.
struct LoopState {
    rng: ChaCha8Rng,
    baseline: EmaBaseline,
    curve: Curve,
    history_actions: VecDeque<Vec<usize>>,
    history_rewards: VecDeque<f64>,
    since_ce: usize,
    best: Option<(f64, Placement)>,
    num_invalid: usize,
    samples: usize,
    minibatches: u64,
    /// Environment snapshot at the *logical* start of the run (survives
    /// resumes), used as the telemetry baseline.
    start: EnvSnapshot,
    /// Optimizer states to restore into the algorithm objects (resume only).
    restored_opts: Option<(Adam, Adam, Adam)>,
}

/// Runs the full training loop of `agent` against `env`, starting fresh.
///
/// Each minibatch is sampled and decoded as *one* batched forward pass
/// ([`StochasticPolicy::sample_batch`](eagle_rl::StochasticPolicy::sample_batch)
/// / [`PlacementAgent::decode_batch`]) over per-episode RNG streams forked off
/// the seeded trainer RNG with [`eagle_rl::fork_streams`]. Batching is
/// bit-identical to the per-episode path and the master RNG advances exactly
/// as a serial sampling loop would, so the action sequences — and therefore
/// the curve, the trained policy and the best placement — are bit-identical
/// for every `cfg.workers` value and across checkpoint resumes.
///
/// With `cfg.checkpoint_every` and `cfg.checkpoint_dir` both set, the loop
/// additionally saves a resumable [`TrainerState`] every *k* minibatches; pass
/// a loaded state to [`train_from`] to continue bit-identically.
pub fn train(
    agent: &impl PlacementAgent,
    params: &mut Params,
    env: &mut Environment,
    cfg: &TrainerConfig,
) -> TrainResult {
    assert!(cfg.minibatch > 0, "minibatch must be positive");
    let state = LoopState {
        rng: ChaCha8Rng::seed_from_u64(cfg.seed),
        baseline: EmaBaseline::new(cfg.ema_alpha),
        curve: Curve::new(agent.name()),
        history_actions: VecDeque::new(),
        history_rewards: VecDeque::new(),
        since_ce: 0,
        best: None,
        num_invalid: 0,
        samples: 0,
        minibatches: 0,
        start: env.snapshot(),
        restored_opts: None,
    };
    run_loop(agent, params, env, cfg, state)
}

/// Resumes training from a checkpointed [`TrainerState`].
///
/// The caller reconstructs the immutable inputs exactly as the original run
/// did — same agent architecture and scale, same environment graph/machine/
/// measurement config, same `cfg` — and this function restores every mutable
/// piece: parameters, the three optimizers' moments, the trainer RNG position,
/// the EMA baseline, the CE history window, the curve, and the environment
/// (noise RNG, placement cache, wall-clock, counters). The continuation is
/// bit-identical to the uninterrupted run (locked by
/// `tests/checkpoint_resume.rs`).
///
/// Fails with a typed [`ResumeError`] — never a panic — when the state does not
/// fit the given agent, parameter layout, or environment; on failure `params`
/// and `env` are left unmodified.
pub fn train_from(
    agent: &impl PlacementAgent,
    params: &mut Params,
    env: &mut Environment,
    cfg: &TrainerConfig,
    state: TrainerState,
) -> Result<TrainResult, ResumeError> {
    assert!(cfg.minibatch > 0, "minibatch must be positive");
    if state.curve.label != agent.name() {
        return Err(ResumeError::AgentMismatch {
            checkpoint: state.curve.label.clone(),
            agent: agent.name().to_string(),
        });
    }
    check_param_layout(params, &state.params)?;
    let rng = state.rng.restore().map_err(ResumeError::Rng)?;
    env.restore_state(&state.env).map_err(ResumeError::Env)?;
    *params = state.params;

    let loop_state = LoopState {
        rng,
        baseline: state.baseline,
        curve: state.curve,
        history_actions: state.history_actions.into(),
        history_rewards: state.history_rewards.into(),
        since_ce: state.since_ce as usize,
        best: state.best,
        num_invalid: state.num_invalid as usize,
        samples: state.samples as usize,
        minibatches: state.minibatches,
        start: state.start_snapshot,
        restored_opts: Some((state.opt_reinforce, state.opt_ppo, state.opt_ce)),
    };
    Ok(run_loop(agent, params, env, cfg, loop_state))
}

/// Rejects a resume whose checkpointed parameters were built by a different
/// architecture than the live agent's (count, names, or shapes differ).
fn check_param_layout(current: &Params, saved: &Params) -> Result<(), ResumeError> {
    if current.len() != saved.len() {
        return Err(ResumeError::ParamMismatch(format!(
            "checkpoint has {} tensors, agent built {}",
            saved.len(),
            current.len()
        )));
    }
    for id in current.ids() {
        if current.name(id) != saved.name(id) {
            return Err(ResumeError::ParamMismatch(format!(
                "tensor {} is '{}' in the checkpoint but '{}' in the agent",
                id.index(),
                saved.name(id),
                current.name(id)
            )));
        }
        if current.get(id).shape() != saved.get(id).shape() {
            return Err(ResumeError::ParamMismatch(format!(
                "tensor '{}' is {:?} in the checkpoint but {:?} in the agent",
                current.name(id),
                saved.get(id).shape(),
                current.get(id).shape()
            )));
        }
    }
    Ok(())
}

/// The shared minibatch loop behind [`train`] and [`train_from`].
fn run_loop(
    agent: &impl PlacementAgent,
    params: &mut Params,
    env: &mut Environment,
    cfg: &TrainerConfig,
    mut st: LoopState,
) -> TrainResult {
    let host_start = std::time::Instant::now();
    let samples_at_entry = st.samples;
    let rec = env.recorder().clone();
    let workers = eagle_devsim::resolve_workers(cfg.workers);

    let mut reinforce = Reinforce::new(cfg.optim.clone()).with_recorder(rec.clone());
    let mut ppo =
        Ppo::new(cfg.optim.clone(), cfg.ppo_clip, cfg.ppo_epochs).with_recorder(rec.clone());
    let mut ce = CrossEntropyMin::new(cfg.optim.clone(), cfg.ce_steps).with_recorder(rec.clone());
    if let Some((r, p, c)) = st.restored_opts.take() {
        reinforce.restore_optimizer(r);
        ppo.restore_optimizer(p);
        ce.restore_optimizer(c);
    }

    // CE elite pool: a rolling window so memory (and checkpoint size) stays
    // bounded on long runs, but never smaller than one CE interval.
    let window = cfg.history_window.max(cfg.ce_interval).max(cfg.ce_elites);

    while st.samples < cfg.total_samples {
        let batch_size = cfg.minibatch.min(cfg.total_samples - st.samples);
        rec.add("trainer.minibatches", 1);

        // Phase A (seeded): draw the minibatch's action sequences in one
        // batched forward pass. Each episode samples from its own stream
        // forked off the trainer RNG; `fork_streams` advances the master RNG
        // past exactly the draws a serial per-episode loop would consume, so
        // the action stream — and the checkpointed RNG position — is
        // bit-identical to per-episode sampling.
        let sample_span = rec.span("trainer.sample_us");
        let mut streams =
            eagle_rl::fork_streams(&mut st.rng, agent.rng_draws_per_sample(), batch_size);
        let mut rng_refs: Vec<&mut dyn rand::RngCore> =
            streams.iter_mut().map(|r| r as &mut dyn rand::RngCore).collect();
        let drawn = agent.sample_batch(params, &mut rng_refs);
        drop(sample_span);
        let (actions_batch, old_log_probs): (Vec<Vec<usize>>, Vec<f32>) = drawn.into_iter().unzip();

        // Phase B: decode actions into placements — one batched pass, so
        // parameter-dependent decode state (EAGLE's grouper forward) is
        // computed once per minibatch instead of once per episode.
        let decode_span = rec.span("trainer.decode_us");
        let placements: Vec<Placement> = agent.decode_batch(params, &actions_batch);
        drop(decode_span);

        // Phase C: evaluate the minibatch (cache probes and noise serial,
        // cache-miss simulations parallel — see `Environment::evaluate_batch`).
        let evaluate_span = rec.span("trainer.evaluate_us");
        let wall_before = env.wall_clock();
        let measurements = env.evaluate_batch(&placements, workers);
        drop(evaluate_span);
        // Rebuild the per-episode wall-clock by accumulating costs in episode
        // order — the same float additions the serial loop performs, so curve
        // x-values are bit-identical.
        let mut wall = wall_before;

        // Phase D (serial): rewards, baseline, curve, policy update — in
        // episode order.
        let update_span = rec.span("trainer.update_us");
        let mut batch: Vec<TrainSample> = Vec::with_capacity(batch_size);
        for (((actions, old_log_prob), placement), meas) in
            actions_batch.into_iter().zip(old_log_probs).zip(&placements).zip(&measurements)
        {
            st.samples += 1;
            st.since_ce += 1;
            let reward = match meas.step_time {
                Some(t) => {
                    if st.best.as_ref().is_none_or(|(b, _)| t < *b) {
                        st.best = Some((t, placement.clone()));
                    }
                    cfg.reward.apply(t)
                }
                None => {
                    st.num_invalid += 1;
                    cfg.reward.apply(cfg.invalid_penalty_time)
                }
            };
            wall += meas.wall_cost;
            st.curve.push(st.samples as u64, wall, meas.step_time);
            let advantage =
                if cfg.use_baseline { st.baseline.advantage(reward) as f32 } else { reward as f32 };
            st.history_actions.push_back(actions.clone());
            st.history_rewards.push_back(reward);
            batch.push(TrainSample { actions, old_log_prob, advantage });
        }

        if cfg.normalize_adv && batch.len() > 1 {
            let mean = batch.iter().map(|s| s.advantage).sum::<f32>() / batch.len() as f32;
            let var = batch.iter().map(|s| (s.advantage - mean).powi(2)).sum::<f32>()
                / batch.len() as f32;
            let std = var.sqrt().max(1e-6);
            for s in &mut batch {
                s.advantage /= std;
            }
        }

        match cfg.algo {
            Algo::Reinforce => {
                reinforce.update(agent, params, &batch);
            }
            Algo::Ppo => {
                ppo.update(agent, params, &batch);
            }
            Algo::PpoCe => {
                ppo.update(agent, params, &batch);
                if st.since_ce >= cfg.ce_interval {
                    st.since_ce = 0;
                    let rewards: &[f64] = st.history_rewards.make_contiguous();
                    let top = top_k_indices(rewards, cfg.ce_elites);
                    let elites: Vec<Vec<usize>> =
                        top.iter().map(|&i| st.history_actions[i].clone()).collect();
                    ce.update(agent, params, &elites);
                }
            }
        }
        drop(update_span);

        // End of minibatch: trim the history window, then (optionally)
        // checkpoint — trimming first keeps the on-disk state identical to the
        // in-memory state a resume will rebuild.
        while st.history_actions.len() > window {
            st.history_actions.pop_front();
            st.history_rewards.pop_front();
        }
        st.minibatches += 1;

        if let (Some(every), Some(dir)) = (cfg.checkpoint_every, &cfg.checkpoint_dir) {
            if every > 0 && st.minibatches.is_multiple_of(every as u64) {
                let snapshot = TrainerState {
                    samples: st.samples as u64,
                    minibatches: st.minibatches,
                    num_invalid: st.num_invalid as u64,
                    since_ce: st.since_ce as u64,
                    rng: RngState::capture(&st.rng),
                    baseline: st.baseline.clone(),
                    history_actions: st.history_actions.iter().cloned().collect(),
                    history_rewards: st.history_rewards.iter().copied().collect(),
                    best: st.best.clone(),
                    curve: st.curve.clone(),
                    params: params.clone(),
                    opt_reinforce: reinforce.optimizer().clone(),
                    opt_ppo: ppo.optimizer().clone(),
                    opt_ce: ce.optimizer().clone(),
                    env: env.save_state(),
                    start_snapshot: st.start,
                };
                let save = std::fs::create_dir_all(dir)
                    .map_err(|e| crate::checkpoint::CheckpointError::Io(e).to_string())
                    .and_then(|()| {
                        save_checkpoint(&snapshot, dir.join(CHECKPOINT_FILE))
                            .map_err(|e| e.to_string())
                    });
                match save {
                    Ok(()) => rec.add("trainer.checkpoints", 1),
                    Err(e) => {
                        rec.add("trainer.checkpoint_errors", 1);
                        eprintln!("warning: checkpoint save to {} failed: {e}", dir.display());
                    }
                }
            }
        }
    }

    // Final 1,000-step measurement of the best placement (paper protocol).
    let (best_placement, final_step_time) = match st.best {
        Some((_, p)) => {
            let t = env.evaluate_final(&p);
            (Some(p), t)
        }
        None => (None, None),
    };

    let run = env.snapshot().since(&st.start);
    let elapsed = host_start.elapsed().as_secs_f64();
    let samples_this_process = st.samples - samples_at_entry;
    let telemetry = Telemetry {
        episodes_per_sec: if elapsed > 0.0 { samples_this_process as f64 / elapsed } else { 0.0 },
        evals: run.evals,
        invalid_evals: run.invalid_evals,
        cache_hits: run.cache.hits,
        cache_misses: run.cache.misses,
        cache_evictions: run.cache.evictions,
        cache_hit_rate: run.cache.hit_rate(),
        sim_wall_clock: run.wall_clock,
        workers,
    };
    st.curve.telemetry = Some(telemetry);

    TrainResult {
        best_placement,
        final_step_time,
        curve: st.curve,
        num_invalid: st.num_invalid,
        samples: st.samples,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{EagleAgent, FixedGroupAgent, PlacerKind};
    use crate::checkpoint::load_checkpoint;
    use crate::scale::AgentScale;
    use eagle_devsim::{Machine, MeasureConfig};
    use eagle_opgraph::builders;

    fn tiny_env() -> (eagle_opgraph::OpGraph, Machine, Environment) {
        let g = builders::gnmt(&builders::GnmtConfig {
            batch: 2,
            hidden: 4,
            layers: 2,
            seq_len: 3,
            vocab: 20,
        });
        let m = Machine::paper_machine();
        let env = Environment::builder(g.clone(), m.clone())
            .measure(MeasureConfig::exact())
            .seed(3)
            .build()
            .expect("valid tiny environment");
        (g, m, env)
    }

    #[test]
    fn training_improves_over_first_samples() {
        let (g, m, mut env) = tiny_env();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 120);
        cfg.optim.lr = 0.05; // tiny nets: faster convergence for the test
        let result = train(&agent, &mut params, &mut env, &cfg);
        assert_eq!(result.samples, 120);
        assert_eq!(result.curve.points.len(), 120);
        let t = result.final_step_time.expect("found a valid placement");
        // The first sampled placement is essentially random; training must do
        // at least as well, and the curve's best must be monotone.
        let first = result.curve.points[0].measured.unwrap_or(f64::INFINITY);
        assert!(t <= first * 1.01, "final {t} should not be worse than first {first}");
        let mut prev = f64::INFINITY;
        for p in &result.curve.points {
            if let Some(b) = p.best_so_far {
                assert!(b <= prev + 1e-12);
                prev = b;
            }
        }
    }

    #[test]
    fn all_algorithms_run() {
        for algo in [Algo::Reinforce, Algo::Ppo, Algo::PpoCe] {
            let (g, m, mut env) = tiny_env();
            let mut params = Params::new();
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let group_of: Vec<usize> = (0..g.len()).map(|i| i * 4 / g.len()).collect();
            let agent = FixedGroupAgent::new(
                &mut params,
                "t",
                &g,
                &m,
                group_of,
                4,
                PlacerKind::Simple,
                AgentScale::tiny(),
                &mut rng,
            );
            let mut cfg = TrainerConfig::paper(algo, 60);
            cfg.ce_interval = 20;
            let result = train(&agent, &mut params, &mut env, &cfg);
            assert_eq!(result.samples, 60, "{algo:?}");
            assert!(result.final_step_time.is_some(), "{algo:?}");
        }
    }

    #[test]
    fn wall_clock_monotone_in_curve() {
        let (g, m, mut env) = tiny_env();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let cfg = TrainerConfig::paper(Algo::Ppo, 30);
        let result = train(&agent, &mut params, &mut env, &cfg);
        let mut prev = 0.0;
        for p in &result.curve.points {
            assert!(p.wall_clock >= prev);
            prev = p.wall_clock;
        }
    }

    #[test]
    fn history_window_bounds_memory() {
        // A window smaller than the run length must not change short-run
        // behaviour for non-CE algos, and the checkpoint must carry at most
        // `max(history_window, ce_interval, ce_elites)` samples.
        let (g, m, mut env) = tiny_env();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 80);
        cfg.history_window = 1; // effective window = ce_interval = 50
        let dir = std::env::temp_dir().join("eagle-trainer-window-test");
        std::fs::create_dir_all(&dir).unwrap();
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = Some(1);
        let result = train(&agent, &mut params, &mut env, &cfg);
        assert_eq!(result.samples, 80);
        let state = load_checkpoint(dir.join(CHECKPOINT_FILE)).unwrap();
        assert_eq!(state.history_actions.len(), 50, "window clamps to ce_interval");
        assert_eq!(state.history_rewards.len(), 50);
        assert_eq!(state.samples, 80);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_wrong_agent_and_params() {
        let (g, m, mut env) = tiny_env();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        let mut cfg = TrainerConfig::paper(Algo::Ppo, 20);
        let dir = std::env::temp_dir().join("eagle-trainer-reject-test");
        std::fs::create_dir_all(&dir).unwrap();
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = Some(1);
        train(&agent, &mut params, &mut env, &cfg);
        let state = load_checkpoint(dir.join(CHECKPOINT_FILE)).unwrap();

        // Different agent type: label mismatch.
        let mut other_params = Params::new();
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let group_of: Vec<usize> = (0..g.len()).map(|i| i * 2 / g.len()).collect();
        let other = FixedGroupAgent::new(
            &mut other_params,
            "other",
            &g,
            &m,
            group_of,
            2,
            PlacerKind::Simple,
            AgentScale::tiny(),
            &mut rng2,
        );
        let (_, _, mut env2) = tiny_env();
        match train_from(&other, &mut other_params, &mut env2, &cfg, state.clone()) {
            Err(ResumeError::AgentMismatch { .. }) => {}
            other => panic!("expected AgentMismatch, got {other:?}"),
        }

        // Same agent type at a different scale: parameter layout mismatch.
        let mut big_params = Params::new();
        let mut rng3 = ChaCha8Rng::seed_from_u64(5);
        let big = EagleAgent::new(&mut big_params, &g, &m, AgentScale::quick(), &mut rng3);
        let (_, _, mut env3) = tiny_env();
        match train_from(&big, &mut big_params, &mut env3, &cfg, state) {
            Err(ResumeError::ParamMismatch(_)) => {}
            other => panic!("expected ParamMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn algo_labels() {
        assert_eq!(Algo::Reinforce.label(), "REINFORCE");
        assert_eq!(Algo::Ppo.label(), "PPO");
        assert_eq!(Algo::PpoCe.label(), "PPO+CE");
    }
}
