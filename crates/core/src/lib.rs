//! # eagle-core
//!
//! The paper's primary contribution: the EAGLE device-placement agent
//! ([`EagleAgent`]: feed-forward grouper + linking RNN + attention-before seq2seq
//! placer, trained end-to-end with PPO), together with the learned baselines it is
//! evaluated against ([`HpAgent`] — Hierarchical Planner, [`FixedGroupAgent`] —
//! heuristic-grouper variants and the Post baseline) and the training driver
//! ([`Trainer`]) that reproduces the paper's measurement protocol and training
//! curves — over a single graph ([`GraphSource::fixed`]) or a whole distribution
//! of graphs (rosters and [`GraphGen`](eagle_opgraph::GraphGen) samplers, the
//! GDP/Placeto generalist direction).
//!
//! ```no_run
//! use eagle_core::{Algo, AgentScale, EagleAgent, GraphSource, Trainer, TrainerConfig};
//! use eagle_devsim::{Benchmark, Machine, MeasureConfig};
//! use rand::SeedableRng;
//!
//! let machine = Machine::paper_machine();
//! let graph = Benchmark::InceptionV3.graph_for(&machine);
//! let trainer = Trainer::builder(GraphSource::fixed(graph.clone()), machine.clone())
//!     .config(TrainerConfig::paper(Algo::Ppo, 500))
//!     .measure(MeasureConfig::default())
//!     .env_seed(1)
//!     .build()
//!     .unwrap();
//! let mut params = eagle_tensor::Params::new();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let agent = EagleAgent::new(&mut params, &graph, &machine, AgentScale::quick(), &mut rng);
//! let result = trainer.train(&agent, &mut params).unwrap();
//! println!("best per-step time: {:?}", result.final_step_time);
//! ```

#![warn(missing_docs)]

mod agents;
pub mod checkpoint;
mod curve;
mod scale;
mod source;
mod trainer;

pub use agents::{EagleAgent, FixedGroupAgent, HpAgent, PlacementAgent, PlacerKind};
pub use checkpoint::{
    fnv1a64, load_checkpoint, save_checkpoint, CheckpointError, GraphEntryState, TrainerState,
    CHECKPOINT_FILE, CHECKPOINT_MAGIC, CHECKPOINT_SCHEMA_VERSION,
};
pub use curve::{Curve, CurvePoint, ProbePoint};
pub use eagle_obs::Telemetry;
pub use scale::AgentScale;
pub use source::{GraphOrigin, GraphSource, OriginKind, SourceCursor, SourceError, SourceState};
pub use trainer::{
    Algo, ConfigError, GraphSummary, ResumeError, TrainError, TrainResult, Trainer, TrainerBuilder,
    TrainerConfig,
};
