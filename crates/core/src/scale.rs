//! Agent sizing presets.
//!
//! The paper's hyper-parameters (Sec. IV-C) are expensive on a laptop-class CPU, so
//! every experiment binary accepts a scale: [`AgentScale::paper`] reproduces the
//! paper exactly, [`AgentScale::quick`] shrinks the networks and group count so a
//! full table reproduces in minutes, and [`AgentScale::tiny`] is for unit tests.
//! The comparative *shape* of results must hold at every scale.

/// Network and grouping sizes for one agent build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentScale {
    /// Number of groups `k` the grouper produces (paper: 256).
    pub num_groups: usize,
    /// Hidden width of the grouper MLP (paper: 64, two layers).
    pub grouper_hidden: usize,
    /// LSTM hidden size of the seq2seq placer (paper: 512).
    pub placer_hidden: usize,
    /// Attention projection size.
    pub attn_dim: usize,
    /// Hidden size of EAGLE's linking RNN.
    pub link_hidden: usize,
    /// Hidden width of Post's simple placer and the GCN placer.
    pub simple_hidden: usize,
}

impl AgentScale {
    /// The paper's configuration (Sec. IV-C).
    pub fn paper() -> Self {
        Self {
            num_groups: 256,
            grouper_hidden: 64,
            placer_hidden: 512,
            attn_dim: 64,
            link_hidden: 64,
            simple_hidden: 64,
        }
    }

    /// Minutes-scale configuration for reproducing table shapes quickly.
    pub fn quick() -> Self {
        Self {
            num_groups: 32,
            grouper_hidden: 32,
            placer_hidden: 48,
            attn_dim: 24,
            link_hidden: 32,
            simple_hidden: 32,
        }
    }

    /// Seconds-scale configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_groups: 6,
            grouper_hidden: 12,
            placer_hidden: 12,
            attn_dim: 8,
            link_hidden: 10,
            simple_hidden: 12,
        }
    }

    /// Parses `"paper"` / `"quick"` / `"tiny"`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" => Some(Self::paper()),
            "quick" => Some(Self::quick()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let p = AgentScale::paper();
        let q = AgentScale::quick();
        let t = AgentScale::tiny();
        assert!(p.num_groups > q.num_groups && q.num_groups > t.num_groups);
        assert!(p.placer_hidden > q.placer_hidden && q.placer_hidden > t.placer_hidden);
        assert_eq!(p.num_groups, 256, "paper uses 256 groups");
        assert_eq!(p.placer_hidden, 512, "paper uses 512 LSTM units");
        assert_eq!(p.grouper_hidden, 64, "paper uses 64 grouper units");
    }

    #[test]
    fn from_name_roundtrip() {
        assert_eq!(AgentScale::from_name("paper"), Some(AgentScale::paper()));
        assert_eq!(AgentScale::from_name("quick"), Some(AgentScale::quick()));
        assert_eq!(AgentScale::from_name("tiny"), Some(AgentScale::tiny()));
        assert_eq!(AgentScale::from_name("bogus"), None);
    }
}
