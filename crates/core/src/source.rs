//! Graph sources: where the trainer's per-minibatch graphs come from.
//!
//! The generalist trainer samples one graph per minibatch from a
//! [`GraphSource`] — a fixed single graph (the classic single-benchmark
//! setup), a roster of named graphs visited round-robin or by weight, or a
//! seed-deterministic [`GraphGen`] config distribution. The source itself is
//! immutable; all sampling state lives in an external [`SourceCursor`] so the
//! trainer can checkpoint and restore the exact stream position
//! ([`SourceState`]).
//!
//! Held-out graphs for zero-shot evaluation come from the same source via
//! [`GraphSource::holdout_origins`] and are disjoint from the training stream
//! by construction: roster sources reserve the last `holdout` entries, and
//! generated sources give training draws *even* seeds and holdout graphs
//! *odd* seeds.

use std::fmt;

use eagle_devsim::{EnvStateError, RngState};
use eagle_opgraph::{GraphError, GraphGen, GraphGenConfig, OpGraph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Errors from constructing a [`GraphSource`] or validating a holdout split.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceError {
    /// A roster source needs at least one graph.
    EmptyRoster,
    /// A weighted roster entry has a non-finite or non-positive weight.
    BadWeight {
        /// Name of the offending roster entry.
        name: String,
        /// The rejected weight.
        weight: f64,
    },
    /// The generator config failed validation.
    Graph(GraphError),
    /// A fixed source cannot hold out its only graph.
    HoldoutUnsupported,
    /// The holdout split must leave at least one training graph.
    HoldoutTooLarge {
        /// Requested holdout size.
        holdout: usize,
        /// Number of graphs in the roster.
        roster: usize,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::EmptyRoster => write!(f, "graph roster is empty"),
            SourceError::BadWeight { name, weight } => {
                write!(f, "roster entry {name:?} has invalid weight {weight}")
            }
            SourceError::Graph(e) => write!(f, "graph generator config rejected: {e}"),
            SourceError::HoldoutUnsupported => {
                write!(f, "a fixed single-graph source cannot hold out graphs")
            }
            SourceError::HoldoutTooLarge { holdout, roster } => write!(
                f,
                "holdout of {holdout} graphs leaves no training graphs in a roster of {roster}"
            ),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<GraphError> for SourceError {
    fn from(e: GraphError) -> Self {
        SourceError::Graph(e)
    }
}

/// Which arm of a [`GraphSource`] an origin refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OriginKind {
    /// The fixed single graph.
    Fixed,
    /// A roster entry; `key` is its index.
    Roster,
    /// A generated graph; `key` is the [`GraphGen`] sample seed.
    Generated,
}

/// A compact, serializable reference to one graph drawn from a
/// [`GraphSource`]. Rebuilding the graph from its origin is deterministic
/// ([`GraphSource::build`]), so checkpoints store origins instead of graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GraphOrigin {
    /// Which source arm produced the graph.
    pub kind: OriginKind,
    /// Roster index or generator seed; 0 for fixed sources.
    pub key: u64,
}

impl GraphOrigin {
    /// Origin of the fixed single graph.
    pub fn fixed() -> Self {
        Self { kind: OriginKind::Fixed, key: 0 }
    }

    /// Origin of roster entry `index`.
    pub fn roster(index: usize) -> Self {
        Self { kind: OriginKind::Roster, key: index as u64 }
    }

    /// Origin of the generated graph with sample seed `seed`.
    pub fn generated(seed: u64) -> Self {
        Self { kind: OriginKind::Generated, key: seed }
    }
}

enum SourceKind {
    Fixed(OpGraph),
    Roster { graphs: Vec<(String, OpGraph)>, weights: Option<Vec<f64>> },
    Generated(GraphGen),
}

/// An immutable distribution of training graphs. See the module docs.
pub struct GraphSource {
    kind: SourceKind,
    seed: u64,
}

impl fmt::Debug for GraphSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SourceKind::Fixed(g) => write!(f, "GraphSource::Fixed({:?})", g.model_name),
            SourceKind::Roster { graphs, weights } => write!(
                f,
                "GraphSource::Roster({} graphs, {})",
                graphs.len(),
                if weights.is_some() { "weighted" } else { "round-robin" }
            ),
            SourceKind::Generated(g) => {
                write!(f, "GraphSource::Generated(target_ops={})", g.config().target_ops)
            }
        }
    }
}

impl GraphSource {
    /// A single fixed graph — the classic single-benchmark trainer setup.
    /// Draws consume no source randomness, so single-graph training streams
    /// are bit-identical to the pre-multi-graph trainer.
    pub fn fixed(graph: OpGraph) -> Self {
        Self { kind: SourceKind::Fixed(graph), seed: 0 }
    }

    /// A named roster of graphs visited round-robin in training order.
    pub fn roster(graphs: Vec<(String, OpGraph)>) -> Result<Self, SourceError> {
        if graphs.is_empty() {
            return Err(SourceError::EmptyRoster);
        }
        Ok(Self { kind: SourceKind::Roster { graphs, weights: None }, seed: 0 })
    }

    /// A named roster sampled by weight; draws consume one `u64` of cursor
    /// randomness each.
    pub fn weighted(graphs: Vec<(String, OpGraph, f64)>, seed: u64) -> Result<Self, SourceError> {
        if graphs.is_empty() {
            return Err(SourceError::EmptyRoster);
        }
        for (name, _, w) in &graphs {
            if !w.is_finite() || *w <= 0.0 {
                return Err(SourceError::BadWeight { name: name.clone(), weight: *w });
            }
        }
        let weights = graphs.iter().map(|(_, _, w)| *w).collect();
        let graphs = graphs.into_iter().map(|(n, g, _)| (n, g)).collect();
        Ok(Self { kind: SourceKind::Roster { graphs, weights: Some(weights) }, seed })
    }

    /// A seed-deterministic [`GraphGen`] config distribution. Each training
    /// draw consumes one `u64` of cursor randomness and maps it to an *even*
    /// generator seed; holdout graphs use *odd* seeds, so the two sets are
    /// disjoint by parity.
    pub fn generated(cfg: GraphGenConfig, seed: u64) -> Result<Self, SourceError> {
        Ok(Self { kind: SourceKind::Generated(GraphGen::new(cfg)?), seed })
    }

    /// Whether this is a fixed single-graph source.
    pub fn is_fixed(&self) -> bool {
        matches!(self.kind, SourceKind::Fixed(_))
    }

    /// Seed the source was constructed with (0 for fixed / round-robin).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fresh cursor positioned at the start of the training stream.
    pub fn initial_cursor(&self) -> SourceCursor {
        SourceCursor { rng: ChaCha8Rng::seed_from_u64(self.seed), drawn: 0 }
    }

    /// Checks that holding out `holdout` graphs is possible for this source.
    pub fn validate_holdout(&self, holdout: usize) -> Result<(), SourceError> {
        match &self.kind {
            SourceKind::Fixed(_) if holdout > 0 => Err(SourceError::HoldoutUnsupported),
            SourceKind::Roster { graphs, .. } if holdout >= graphs.len() => {
                Err(SourceError::HoldoutTooLarge { holdout, roster: graphs.len() })
            }
            _ => Ok(()),
        }
    }

    /// Draws the next training-graph origin, advancing the cursor. The first
    /// `len - holdout` roster entries form the training pool; generated
    /// sources map cursor randomness to even seeds (see [`Self::generated`]).
    pub fn draw_train(&self, cursor: &mut SourceCursor, holdout: usize) -> GraphOrigin {
        let origin = match &self.kind {
            SourceKind::Fixed(_) => GraphOrigin::fixed(),
            SourceKind::Roster { graphs, weights } => {
                let pool = graphs.len() - holdout;
                let index = match weights {
                    None => (cursor.drawn % pool as u64) as usize,
                    Some(ws) => {
                        let total: f64 = ws[..pool].iter().sum();
                        let mut x = cursor.rng.gen::<f64>() * total;
                        let mut pick = pool - 1;
                        for (i, w) in ws[..pool].iter().enumerate() {
                            if x < *w {
                                pick = i;
                                break;
                            }
                            x -= w;
                        }
                        pick
                    }
                };
                GraphOrigin::roster(index)
            }
            SourceKind::Generated(_) => GraphOrigin::generated(cursor.rng.gen::<u64>() << 1),
        };
        cursor.drawn += 1;
        origin
    }

    /// The held-out origins for a split of `holdout` graphs. Deterministic in
    /// the source alone — independent of the cursor, so probing never
    /// perturbs the training stream.
    pub fn holdout_origins(&self, holdout: usize) -> Vec<GraphOrigin> {
        match &self.kind {
            SourceKind::Fixed(_) => Vec::new(),
            SourceKind::Roster { graphs, .. } => {
                (graphs.len() - holdout..graphs.len()).map(GraphOrigin::roster).collect()
            }
            SourceKind::Generated(_) => (0..holdout as u64)
                .map(|i| {
                    GraphOrigin::generated((splitmix64(self.seed ^ HOLDOUT_SALT ^ i) << 1) | 1)
                })
                .collect(),
        }
    }

    /// Rebuilds the graph an origin refers to. Deterministic: the same origin
    /// always yields a bit-identical graph, which is what lets checkpoints
    /// and evicted pool entries store origins instead of graphs.
    pub fn build(&self, origin: &GraphOrigin) -> OpGraph {
        match (&self.kind, origin.kind) {
            (SourceKind::Fixed(g), OriginKind::Fixed) => g.clone(),
            (SourceKind::Roster { graphs, .. }, OriginKind::Roster) => {
                graphs[origin.key as usize].1.clone()
            }
            (SourceKind::Generated(gg), OriginKind::Generated) => gg.sample(origin.key),
            (_, kind) => panic!("origin {kind:?} does not belong to {self:?}"),
        }
    }

    /// Whether `origin` can be rebuilt by this source (used to give resumes
    /// from a checkpoint of a different source a typed error, not a panic).
    pub fn owns(&self, origin: &GraphOrigin) -> bool {
        match (&self.kind, origin.kind) {
            (SourceKind::Fixed(_), OriginKind::Fixed) => true,
            (SourceKind::Roster { graphs, .. }, OriginKind::Roster) => {
                (origin.key as usize) < graphs.len()
            }
            (SourceKind::Generated(_), OriginKind::Generated) => true,
            _ => false,
        }
    }

    /// Human-readable name for an origin's graph.
    pub fn name(&self, origin: &GraphOrigin) -> String {
        match (&self.kind, origin.kind) {
            (SourceKind::Fixed(g), OriginKind::Fixed) => g.model_name.clone(),
            (SourceKind::Roster { graphs, .. }, OriginKind::Roster) => {
                graphs[origin.key as usize].0.clone()
            }
            _ => format!("gen-{:016x}", origin.key),
        }
    }
}

const HOLDOUT_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 — the standard 64-bit seed mixer. Used to derive holdout,
/// environment and probe seeds from independent inputs.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mutable position in a [`GraphSource`]'s training stream. Checkpointable
/// via [`SourceCursor::capture`].
#[derive(Debug, Clone)]
pub struct SourceCursor {
    rng: ChaCha8Rng,
    drawn: u64,
}

impl SourceCursor {
    /// Serializes the cursor for a checkpoint.
    pub fn capture(&self) -> SourceState {
        SourceState { rng: RngState::capture(&self.rng), drawn: self.drawn }
    }

    /// Restores a cursor from checkpointed state.
    pub fn restore(state: &SourceState) -> Result<Self, EnvStateError> {
        Ok(Self { rng: state.rng.restore()?, drawn: state.drawn })
    }
}

/// Serialized [`SourceCursor`] — part of the checkpoint schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceState {
    /// Source RNG stream position.
    pub rng: RngState,
    /// Total training draws made.
    pub drawn: u64,
}

impl SourceState {
    /// State of a fresh cursor for a source seeded with `seed` — what
    /// [`GraphSource::initial_cursor`] would capture before any draw.
    pub fn initial(seed: u64) -> Self {
        SourceCursor { rng: ChaCha8Rng::seed_from_u64(seed), drawn: 0 }.capture()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::builders::{self, GnmtConfig};

    fn tiny_graph() -> OpGraph {
        builders::try_gnmt(&GnmtConfig { batch: 2, hidden: 4, layers: 2, seq_len: 3, vocab: 20 })
            .expect("tiny gnmt")
    }

    #[test]
    fn fixed_draws_consume_no_randomness() {
        let src = GraphSource::fixed(tiny_graph());
        let mut c = src.initial_cursor();
        let before = c.capture();
        let o = src.draw_train(&mut c, 0);
        assert_eq!(o, GraphOrigin::fixed());
        assert_eq!(c.capture().rng, before.rng);
        assert_eq!(c.capture().drawn, 1);
        assert!(src.holdout_origins(0).is_empty());
        assert_eq!(src.validate_holdout(1), Err(SourceError::HoldoutUnsupported));
    }

    #[test]
    fn roster_round_robin_skips_holdout() {
        let g = tiny_graph();
        let src = GraphSource::roster(vec![
            ("a".into(), g.clone()),
            ("b".into(), g.clone()),
            ("c".into(), g),
        ])
        .unwrap();
        src.validate_holdout(1).unwrap();
        assert_eq!(
            src.validate_holdout(3),
            Err(SourceError::HoldoutTooLarge { holdout: 3, roster: 3 })
        );
        let mut c = src.initial_cursor();
        let picks: Vec<u64> = (0..5).map(|_| src.draw_train(&mut c, 1).key).collect();
        assert_eq!(picks, vec![0, 1, 0, 1, 0]);
        assert_eq!(src.holdout_origins(1), vec![GraphOrigin::roster(2)]);
        assert_eq!(src.name(&GraphOrigin::roster(2)), "c");
    }

    #[test]
    fn weighted_rejects_bad_weights_and_draws_training_pool_only() {
        let g = tiny_graph();
        let err = GraphSource::weighted(vec![("a".into(), g.clone(), f64::NAN)], 1).unwrap_err();
        assert!(matches!(err, SourceError::BadWeight { .. }));
        let src = GraphSource::weighted(
            vec![("a".into(), g.clone(), 1.0), ("b".into(), g.clone(), 2.0), ("c".into(), g, 1.0)],
            9,
        )
        .unwrap();
        let mut c = src.initial_cursor();
        for _ in 0..64 {
            let o = src.draw_train(&mut c, 1);
            assert!(o.key < 2, "holdout entry drawn for training");
        }
    }

    #[test]
    fn generated_training_and_holdout_seeds_are_parity_disjoint() {
        let src = GraphSource::generated(GraphGenConfig::with_target(24), 5).unwrap();
        let mut c = src.initial_cursor();
        for _ in 0..32 {
            let o = src.draw_train(&mut c, 2);
            assert_eq!(o.key % 2, 0, "training seeds must be even");
        }
        let holdout = src.holdout_origins(2);
        assert_eq!(holdout.len(), 2);
        for o in &holdout {
            assert_eq!(o.key % 2, 1, "holdout seeds must be odd");
        }
        // Deterministic: same source seed, same holdout.
        let src2 = GraphSource::generated(GraphGenConfig::with_target(24), 5).unwrap();
        assert_eq!(src2.holdout_origins(2), holdout);
    }

    #[test]
    fn build_is_deterministic_per_origin() {
        let src = GraphSource::generated(GraphGenConfig::with_target(24), 5).unwrap();
        let mut c = src.initial_cursor();
        let o = src.draw_train(&mut c, 0);
        let g1 = src.build(&o);
        let g2 = src.build(&o);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.model_name, g2.model_name);
        assert!(src.owns(&o));
        assert!(!src.owns(&GraphOrigin::fixed()));
    }

    #[test]
    fn cursor_capture_restore_roundtrips() {
        let src = GraphSource::generated(GraphGenConfig::with_target(24), 7).unwrap();
        let mut c = src.initial_cursor();
        for _ in 0..3 {
            src.draw_train(&mut c, 0);
        }
        let state = c.capture();
        let mut restored = SourceCursor::restore(&state).unwrap();
        let a = src.draw_train(&mut c, 0);
        let b = src.draw_train(&mut restored, 0);
        assert_eq!(a, b);
    }
}
