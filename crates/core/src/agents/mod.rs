//! Placement agents: EAGLE and the paper's learned baselines.

mod eagle;
mod fixed_group;
mod hierarchical_planner;

pub use eagle::EagleAgent;
pub use fixed_group::{FixedGroupAgent, PlacerKind};
pub use hierarchical_planner::HpAgent;

use eagle_devsim::{DeviceId, Machine, Placement};
use eagle_rl::StochasticPolicy;
use eagle_tensor::{Params, Tensor};

/// A policy whose actions decode into a device placement for a concrete graph.
pub trait PlacementAgent: StochasticPolicy {
    /// Display name for tables and curves.
    fn name(&self) -> &str;

    /// Decodes a sampled action vector into a full per-op placement, using the
    /// current parameters (the grouping of hierarchical agents depends on them).
    fn decode(&self, params: &Params, actions: &[usize]) -> Placement;
}

/// The action-index -> device mapping shared by all agents: action `a` selects
/// machine device `a` (CPU first, then GPUs).
pub(crate) fn device_table(machine: &Machine) -> Vec<DeviceId> {
    machine.device_ids().collect()
}

/// Converts the per-op feature rows from `eagle_opgraph::features` into a tensor.
pub(crate) fn features_tensor(graph: &eagle_opgraph::OpGraph) -> Tensor {
    let rows = eagle_opgraph::features::node_features(graph);
    let n = rows.len();
    let dim = eagle_opgraph::features::FEATURE_DIM;
    let mut data = Vec::with_capacity(n * dim);
    for row in rows {
        debug_assert_eq!(row.len(), dim);
        data.extend_from_slice(&row);
    }
    Tensor::from_vec(n, dim, data)
}
