//! Placement agents: EAGLE and the paper's learned baselines.

mod eagle;
mod fixed_group;
mod hierarchical_planner;

pub use eagle::EagleAgent;
pub use fixed_group::{FixedGroupAgent, PlacerKind};
pub use hierarchical_planner::HpAgent;

use eagle_devsim::{DeviceId, Machine, Placement};
use eagle_rl::StochasticPolicy;
use eagle_tensor::{Params, Tensor};

/// A policy whose actions decode into a device placement for a concrete graph.
///
/// Like [`StochasticPolicy`], the trait is batched-first: implementors provide
/// [`PlacementAgent::decode_batch`], which amortizes any parameter-dependent
/// work (e.g. the grouper forward of hierarchical agents) across the whole
/// minibatch, and the per-episode [`PlacementAgent::decode`] is a default
/// wrapper over batch size 1.
pub trait PlacementAgent: StochasticPolicy {
    /// Display name for tables and curves.
    fn name(&self) -> &str;

    /// Decodes one placement per sampled action vector, using the current
    /// parameters. Parameter-dependent decode state (the grouping of
    /// hierarchical agents) is computed once for the whole batch.
    fn decode_batch(&self, params: &Params, actions: &[Vec<usize>]) -> Vec<Placement>;

    /// Decodes a single action vector; thin wrapper over a one-episode
    /// [`PlacementAgent::decode_batch`].
    fn decode(&self, params: &Params, actions: &[usize]) -> Placement {
        self.decode_batch(params, &[actions.to_vec()])
            .pop()
            .expect("decode_batch returns one placement per action vector")
    }

    /// Re-targets this agent to a different op graph, sharing the *same*
    /// parameters (and therefore the same action space and
    /// [`StochasticPolicy::rng_draws_per_sample`] accounting), or `None` when
    /// the agent's decode state is married to its construction graph.
    ///
    /// This is what lets one policy train over a whole distribution of graphs:
    /// the multi-graph trainer builds one view per drawn graph and
    /// samples/scores/decodes through it, while updates flow into the shared
    /// parameter store. The default is `None` — graph-specific baselines like
    /// the fixed-grouping agents opt out, and the trainer reports a typed
    /// `UnsupportedAgent` error instead of silently mis-placing.
    fn for_graph(&self, graph: &eagle_opgraph::OpGraph) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = graph;
        None
    }
}

/// The action-index -> device mapping shared by all agents: action `a` selects
/// machine device `a` (CPU first, then GPUs).
pub(crate) fn device_table(machine: &Machine) -> Vec<DeviceId> {
    machine.device_ids().collect()
}

/// Converts the per-op feature rows from `eagle_opgraph::features` into a tensor.
pub(crate) fn features_tensor(graph: &eagle_opgraph::OpGraph) -> Tensor {
    let rows = eagle_opgraph::features::node_features(graph);
    let n = rows.len();
    let dim = eagle_opgraph::features::FEATURE_DIM;
    let mut data = Vec::with_capacity(n * dim);
    for row in rows {
        debug_assert_eq!(row.len(), dim);
        data.extend_from_slice(&row);
    }
    Tensor::from_vec(n, dim, data)
}
