//! The EAGLE agent: feed-forward grouper, linking RNN, and a sequence-to-sequence
//! placer with attention applied *before* the decoder.
//!
//! The paper's key architectural move (abstract, Sec. III): "An extra RNN is
//! introduced to transform parameters of the grouper into inputs of the placer,
//! linking the originally separated parts together." Concretely here: the grouper's
//! softmax output aggregates per-op features into *soft* group embeddings — a
//! differentiable function of the grouper's parameters — and the linking RNN
//! transforms that sequence of group embeddings into the placer's inputs. Placer
//! policy gradients therefore flow through the linking RNN into the grouper, so a
//! single PPO update trains both halves coherently, instead of the two separately
//! sampled sub-policies of Hierarchical Planner.

use eagle_devsim::{DeviceId, Machine, Placement};
use eagle_nn::{AttentionMode, Grouper, Lstm, Placer, PlacerOutput, Seq2SeqPlacer};
use eagle_opgraph::OpGraph;
use eagle_rl::{BatchScoreHandle, EpisodeScore, ScoreHandle, StochasticPolicy};
use eagle_tensor::{Params, Tape, Tensor, Var};
use rand::Rng;

use crate::scale::AgentScale;

use super::PlacementAgent;

/// The EAGLE hierarchical agent.
pub struct EagleAgent {
    grouper: Grouper,
    link: Lstm,
    placer: Seq2SeqPlacer,
    features: Tensor,
    devices: Vec<DeviceId>,
    num_groups: usize,
}

impl EagleAgent {
    /// Builds the agent for a graph/machine pair, registering all parameters.
    pub fn new(
        params: &mut Params,
        graph: &OpGraph,
        machine: &Machine,
        scale: AgentScale,
        rng: &mut impl Rng,
    ) -> Self {
        let features = super::features_tensor(graph);
        let feat_dim = features.cols();
        let k = scale.num_groups.min(graph.len());
        let grouper = Grouper::new(params, "eagle/grouper", feat_dim, scale.grouper_hidden, k, rng);
        let link = Lstm::new(params, "eagle/link", feat_dim, scale.link_hidden, rng);
        let devices = super::device_table(machine);
        let placer = Seq2SeqPlacer::new(
            params,
            "eagle/placer",
            scale.link_hidden,
            scale.placer_hidden,
            scale.attn_dim,
            devices.len(),
            AttentionMode::Before,
            rng,
        );
        let agent = Self { grouper, link, placer, features, devices, num_groups: k };
        agent.warm_start_grouper(params, graph);
        agent
    }

    /// Builds the agent for *serving* with already-trained parameters.
    ///
    /// Registers the same parameter layout as [`EagleAgent::new`] (construction
    /// order fixes the `ParamId`s, so a checkpoint's `Params` align) but skips the
    /// grouper warm start — the scratch values in `params` are placeholders that a
    /// restored checkpoint overwrites, so the 60 warm-start Adam iterations would
    /// be wasted work on the serving hot path.
    pub fn new_for_inference(
        params: &mut Params,
        graph: &OpGraph,
        machine: &Machine,
        scale: AgentScale,
        rng: &mut impl Rng,
    ) -> Self {
        let features = super::features_tensor(graph);
        let feat_dim = features.cols();
        let k = scale.num_groups.min(graph.len());
        let grouper = Grouper::new(params, "eagle/grouper", feat_dim, scale.grouper_hidden, k, rng);
        let link = Lstm::new(params, "eagle/link", feat_dim, scale.link_hidden, rng);
        let devices = super::device_table(machine);
        let placer = Seq2SeqPlacer::new(
            params,
            "eagle/placer",
            scale.link_hidden,
            scale.placer_hidden,
            scale.attn_dim,
            devices.len(),
            AttentionMode::Before,
            rng,
        );
        Self { grouper, link, placer, features, devices, num_groups: k }
    }

    /// Warm-starts the grouper to a balanced topological chunking of the graph.
    ///
    /// A randomly initialized feed-forward grouper assigns almost every op to the
    /// same argmax group (its logits barely depend on the input at init), which
    /// degenerates the hierarchy into "place the whole graph on one device" — an
    /// immediate OOM or all-CPU local optimum for the large models. Supervised
    /// pre-fitting to the topo-order chunking gives PPO a balanced, structured
    /// starting grouping to fine-tune, which is how EAGLE realizes the paper's
    /// "very few invalid placements during the entire training process" (Sec. IV-D).
    fn warm_start_grouper(&self, params: &mut Params, graph: &OpGraph) {
        let target = Self::warm_start_target(graph, self.num_groups);
        let mut opt = eagle_tensor::optim::Adam::new(0.01);
        for _ in 0..60 {
            params.zero_grad();
            let mut tape = Tape::new();
            let f = tape.leaf(self.features.clone());
            let logits = self.grouper.logits(&mut tape, params, f);
            let picked = tape.log_softmax_pick(logits, &target);
            let neg = tape.neg(picked);
            let loss = tape.mean_all(neg);
            tape.backward(loss, params);
            // Only the grouper participates in this phase; other grads stay zero,
            // and Adam's zero-moment updates leave them untouched.
            opt.step(params);
        }
        params.zero_grad();
    }

    /// The warm-start grouping: balanced topologically contiguous chunks.
    /// Consecutive groups are graph-adjacent, matching the sequence structure the
    /// linking RNN and seq2seq placer consume; RL fine-tuning then reshapes the
    /// grouping end-to-end. (A METIS-based warm start was evaluated and performed
    /// comparably; the topological chunking is cheaper and seed-free.)
    fn warm_start_target(graph: &OpGraph, k: usize) -> Vec<usize> {
        let n = graph.len();
        let order = graph.topo_order();
        let mut target = vec![0usize; n];
        for (pos, id) in order.iter().enumerate() {
            target[id.index()] = pos * k / n.max(1);
        }
        target
    }

    /// Number of groups (= length of the action vector).
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Full per-episode forward pass; `forced` scores the given device actions
    /// instead of sampling. Also returns the group-balance auxiliary loss (see
    /// [`Self::balance_loss`]). Kept as the reference implementation the batched
    /// path is differential-tested against.
    fn forward(
        &self,
        params: &Params,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> (Tape, PlacerOutput, Var) {
        let mut tape = Tape::new();
        let f = tape.leaf(self.features.clone());
        let logits = self.grouper.logits(&mut tape, params, f);
        let aux = self.balance_loss(&mut tape, logits);
        let group_emb = self.grouper.soft_group_embeddings(&mut tape, logits, f);
        let (linked, _) = self.link.forward(&mut tape, params, group_emb);
        let out = self.placer.forward(&mut tape, params, linked, forced, rng);
        (tape, out, aux)
    }

    /// Batched forward: the grouper, balance loss, and linking RNN are
    /// episode-independent so they run *once*; the placer decodes all episodes
    /// in one pass (it sees the same `linked` Var for every episode, so its
    /// encoder also runs once).
    fn forward_batch(
        &self,
        params: &Params,
        forced: Option<&[&[usize]]>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> (Tape, Vec<PlacerOutput>, Var) {
        let bsz = forced.map_or(rngs.len(), <[_]>::len);
        let mut tape = Tape::new();
        let f = tape.leaf(self.features.clone());
        let logits = self.grouper.logits(&mut tape, params, f);
        let aux = self.balance_loss(&mut tape, logits);
        let group_emb = self.grouper.soft_group_embeddings(&mut tape, logits, f);
        let (linked, _) = self.link.forward(&mut tape, params, group_emb);
        let xs = vec![linked; bsz];
        let outs = self.placer.forward_batch(&mut tape, params, &xs, forced, rngs);
        (tape, outs, aux)
    }

    /// Group-balance regularizer: `coef * (ln k - H(usage))`, where `usage` is the
    /// mean soft-assignment distribution over groups. Zero when every group carries
    /// equal soft mass; grows as the grouper collapses ops into few groups. Without
    /// it, placer-policy gradients steadily merge groups (fewer distinct embeddings
    /// are easier to place), degenerating the hierarchy into whole-graph-on-one-
    /// device placements.
    fn balance_loss(&self, tape: &mut Tape, logits: Var) -> Var {
        let n = tape.value(logits).rows();
        let k = self.num_groups;
        let soft = tape.softmax(logits); // (n, k)
        let ones = tape.leaf(Tensor::full(1, n, 1.0 / n as f32));
        let usage = tape.matmul(ones, soft); // (1, k), sums to 1
        let safe = tape.add_scalar(usage, 1e-8);
        let log_usage = tape.ln(safe);
        let ulogu = tape.mul_elem(usage, log_usage);
        let neg_h = tape.sum_all(ulogu); // -H(usage)
        let deficit = tape.add_scalar(neg_h, (k as f32).ln());
        tape.scale(deficit, 3.0)
    }

    /// The current hard op-to-group assignment (argmax of the grouper).
    pub fn group_assignment(&self, params: &Params) -> Vec<usize> {
        let mut tape = Tape::new();
        let f = tape.leaf(self.features.clone());
        let logits = self.grouper.logits(&mut tape, params, f);
        Grouper::hard_assign(tape.value(logits))
    }
}

impl StochasticPolicy for EagleAgent {
    fn rng_draws_per_sample(&self) -> usize {
        self.num_groups
    }

    fn sample_batch(
        &self,
        params: &Params,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<(Vec<usize>, f32)> {
        let (tape, outs, _) = self.forward_batch(params, None, rngs);
        outs.into_iter().map(|out| (out.actions, tape.value(out.log_prob).item())).collect()
    }

    fn score_batch(&self, params: &Params, actions: &[Vec<usize>]) -> BatchScoreHandle {
        let forced: Vec<&[usize]> = actions.iter().map(|a| a.as_slice()).collect();
        let (tape, outs, aux) = self.forward_batch(params, Some(&forced), &mut []);
        let episodes = outs
            .into_iter()
            .map(|out| EpisodeScore {
                log_prob: out.log_prob,
                entropy: out.entropy,
                aux_loss: Some(aux),
            })
            .collect();
        BatchScoreHandle { tape, episodes }
    }

    // Per-episode overrides keep the original single-episode graph construction
    // as an independent reference for the batched path (the two are
    // bit-identical; see the `eagle_rl::policy` contract).
    fn sample(&self, params: &Params, rng: &mut dyn rand::RngCore) -> (Vec<usize>, f32) {
        let (tape, out, _) = self.forward(params, None, rng);
        let logp = tape.value(out.log_prob).item();
        (out.actions, logp)
    }

    fn score(&self, params: &Params, actions: &[usize]) -> ScoreHandle {
        let mut noop = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        use rand::SeedableRng;
        let (tape, out, aux) = self.forward(params, Some(actions), &mut noop);
        ScoreHandle { tape, log_prob: out.log_prob, entropy: out.entropy, aux_loss: Some(aux) }
    }
}

impl PlacementAgent for EagleAgent {
    fn name(&self) -> &str {
        "EAGLE"
    }

    /// Re-targets the agent to `graph` by swapping the feature tensor; the
    /// grouper/link/placer handles (and thus every `ParamId`, the action
    /// space, and the per-sample RNG accounting) are shared with the original,
    /// so one parameter store trains across all views. No warm start: the
    /// parameters are already trained (or training) state, not fresh inits.
    fn for_graph(&self, graph: &OpGraph) -> Option<Self> {
        Some(Self {
            grouper: self.grouper.clone(),
            link: self.link.clone(),
            placer: self.placer.clone(),
            features: super::features_tensor(graph),
            devices: self.devices.clone(),
            num_groups: self.num_groups,
        })
    }

    fn decode_batch(&self, params: &Params, actions: &[Vec<usize>]) -> Vec<Placement> {
        // The grouper forward depends only on the parameters, not on the
        // episode: run it once for the whole minibatch.
        let group_of = self.group_assignment(params);
        actions
            .iter()
            .map(|a| {
                assert_eq!(a.len(), self.num_groups, "one device per group");
                let group_devices: Vec<DeviceId> = a.iter().map(|&d| self.devices[d]).collect();
                Placement::from_groups(&group_of, &group_devices)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_devsim::Machine;
    use eagle_opgraph::builders;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Params, EagleAgent, OpGraph, Machine) {
        let g = builders::try_gnmt(&builders::GnmtConfig {
            batch: 2,
            hidden: 4,
            layers: 2,
            seq_len: 3,
            vocab: 20,
        })
        .expect("valid GNMT config");
        let m = Machine::paper_machine();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let agent = EagleAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        (params, agent, g, m)
    }

    #[test]
    fn sample_decode_roundtrip() {
        let (params, agent, g, m) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (actions, logp) = agent.sample(&params, &mut rng);
        assert_eq!(actions.len(), agent.num_groups());
        assert!(actions.iter().all(|&a| a < m.num_devices()));
        assert!(logp < 0.0);
        let placement = agent.decode(&params, &actions);
        assert_eq!(placement.len(), g.len());
        assert!(placement.validate(&g, &m).is_ok());
    }

    #[test]
    fn score_matches_sampled_log_prob() {
        let (params, agent, _, _) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (actions, logp) = agent.sample(&params, &mut rng);
        let h = agent.score(&params, &actions);
        let rescored = h.tape.value(h.log_prob).item();
        assert!((logp - rescored).abs() < 1e-4, "{logp} vs {rescored}");
    }

    #[test]
    fn gradients_reach_grouper_through_placer_loss() {
        // The linking construction must carry placer-policy gradients back into the
        // grouper parameters (EAGLE's claim).
        let (mut params, agent, _, _) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (actions, _) = agent.sample(&params, &mut rng);
        let mut h = agent.score(&params, &actions);
        let loss = h.tape.neg(h.log_prob);
        h.tape.backward(loss, &mut params);
        let grouper_grad: f32 = params
            .ids()
            .filter(|&id| params.name(id).starts_with("eagle/grouper"))
            .map(|id| params.grad(id).norm())
            .sum();
        assert!(grouper_grad > 0.0, "grouper receives gradient end-to-end");
        let link_grad: f32 = params
            .ids()
            .filter(|&id| params.name(id).starts_with("eagle/link"))
            .map(|id| params.grad(id).norm())
            .sum();
        assert!(link_grad > 0.0, "linking RNN receives gradient");
    }

    #[test]
    fn for_graph_view_shares_params_and_action_space() {
        let (params, agent, _, m) = setup();
        let other = builders::try_inception_v3(&builders::InceptionConfig::default())
            .expect("inception builds");
        let view = agent.for_graph(&other).expect("EAGLE re-targets");
        assert_eq!(view.num_groups(), agent.num_groups());
        assert_eq!(view.rng_draws_per_sample(), agent.rng_draws_per_sample());
        // The view samples and decodes valid placements for the *new* graph
        // using the original parameter store — no re-registration.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (actions, _) = view.sample(&params, &mut rng);
        let placement = view.decode(&params, &actions);
        assert_eq!(placement.len(), other.len());
        assert!(placement.validate(&other, &m).is_ok());
    }

    #[test]
    fn grouping_is_deterministic_given_params() {
        let (params, agent, g, _) = setup();
        let a = agent.group_assignment(&params);
        let b = agent.group_assignment(&params);
        assert_eq!(a, b);
        assert_eq!(a.len(), g.len());
        assert!(a.iter().all(|&gi| gi < agent.num_groups()));
    }
}
