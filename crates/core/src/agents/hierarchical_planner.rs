//! The Hierarchical Planner baseline (Mirhoseini et al., ICLR'18): a feed-forward
//! grouper whose *sampled* hard grouping feeds a sequence-to-sequence placer with
//! the attention context applied *after* the decoder (paper Fig. 4b). Grouper and
//! placer are two separately-sampled sub-policies trained jointly by policy
//! gradient — the coupling EAGLE replaces with its differentiable linking RNN.
//!
//! Because the grouping is resampled every rollout, the placer's inputs keep
//! shifting during training ("the dynamics of the grouping result during training
//! made it even harder to train the agent", paper Sec. II-C) — reproduced here
//! faithfully.

use eagle_devsim::{DeviceId, Machine, Placement};
use eagle_nn::{embedding, AttentionMode, Grouper, Placer, Seq2SeqPlacer};
use eagle_opgraph::OpGraph;
use eagle_rl::{sample_categorical, BatchScoreHandle, EpisodeScore, ScoreHandle, StochasticPolicy};
use eagle_tensor::{Params, Tape, Tensor, Var};
use rand::Rng;

use crate::scale::AgentScale;

use super::PlacementAgent;

/// The Hierarchical Planner agent. Its action vector is the concatenation of one
/// group index per op followed by one device index per group.
pub struct HpAgent {
    grouper: Grouper,
    placer: Seq2SeqPlacer,
    features: Tensor,
    graph: OpGraph,
    devices: Vec<DeviceId>,
    num_groups: usize,
}

impl HpAgent {
    /// Builds the agent, registering all parameters.
    pub fn new(
        params: &mut Params,
        graph: &OpGraph,
        machine: &Machine,
        scale: AgentScale,
        rng: &mut impl Rng,
    ) -> Self {
        let features = super::features_tensor(graph);
        let feat_dim = features.cols();
        let k = scale.num_groups.min(graph.len());
        let grouper = Grouper::new(params, "hp/grouper", feat_dim, scale.grouper_hidden, k, rng);
        let devices = super::device_table(machine);
        let placer = Seq2SeqPlacer::new(
            params,
            "hp/placer",
            embedding::group_feature_dim(k),
            scale.placer_hidden,
            scale.attn_dim,
            devices.len(),
            AttentionMode::After,
            rng,
        );
        Self { grouper, placer, features, graph: graph.clone(), devices, num_groups: k }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Length of the flat action vector: one group per op + one device per group.
    pub fn action_len(&self) -> usize {
        self.graph.len() + self.num_groups
    }

    fn forward(
        &self,
        params: &Params,
        forced: Option<&[usize]>,
        rng: &mut dyn rand::RngCore,
    ) -> (Tape, Vec<usize>, Var, Var) {
        let n = self.graph.len();
        let mut tape = Tape::new();
        let f = tape.leaf(self.features.clone());
        let logits = self.grouper.logits(&mut tape, params, f); // (n, k)
        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);

        // Sample (or force) the hard grouping, one categorical per op.
        let group_of: Vec<usize> = match forced {
            Some(a) => a[..n].to_vec(),
            None => (0..n).map(|i| sample_categorical(tape.value(probs).row(i), rng)).collect(),
        };
        let group_logp = tape.pick_per_row(log_probs, &group_of); // (n, 1)
        let group_logp_sum = tape.sum_all(group_logp);
        // Grouper entropy: mean per-op entropy.
        let plogp = tape.mul_elem(probs, log_probs);
        let total = tape.sum_all(plogp);
        let group_entropy = tape.scale(total, -1.0 / n as f32);

        // Hard group embeddings (Hierarchical Planner's aggregation), then place.
        let emb = embedding::group_features(&self.graph, &group_of, self.num_groups);
        let emb_var = tape.leaf(emb);
        let out = self.placer.forward(&mut tape, params, emb_var, forced.map(|a| &a[n..]), rng);

        let log_prob = tape.add(group_logp_sum, out.log_prob);
        let e2 = tape.add(group_entropy, out.entropy);
        let entropy = tape.scale(e2, 0.5);

        let mut actions = group_of;
        actions.extend_from_slice(&out.actions);
        (tape, actions, log_prob, entropy)
    }

    /// Batched forward. The grouper heads (logits, log-probs, entropy) are
    /// episode-independent and run once; group sampling is episode-major so
    /// stream `b` consumes its `n` group draws before its `k` placer draws,
    /// exactly like a serial rollout on that stream; the per-episode hard group
    /// embeddings then feed one batched placer pass.
    fn forward_batch(
        &self,
        params: &Params,
        forced: Option<&[&[usize]]>,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> (Tape, Vec<(Vec<usize>, Var, Var)>) {
        let n = self.graph.len();
        let bsz = forced.map_or(rngs.len(), <[_]>::len);
        let mut tape = Tape::new();
        let f = tape.leaf(self.features.clone());
        let logits = self.grouper.logits(&mut tape, params, f); // (n, k)
        let log_probs = tape.log_softmax(logits);
        let probs = tape.softmax(logits);

        let groupings: Vec<Vec<usize>> = (0..bsz)
            .map(|b| match forced {
                Some(fa) => fa[b][..n].to_vec(),
                None => {
                    let pv = tape.value(probs);
                    (0..n).map(|i| sample_categorical(pv.row(i), &mut *rngs[b])).collect()
                }
            })
            .collect();
        // Per-episode grouping log-probs before the shared entropy nodes, so the
        // relative node order inside each episode matches the serial tape.
        let group_logp_sums: Vec<Var> = groupings
            .iter()
            .map(|g| {
                let picked = tape.pick_per_row(log_probs, g); // (n, 1)
                tape.sum_all(picked)
            })
            .collect();
        let plogp = tape.mul_elem(probs, log_probs);
        let total = tape.sum_all(plogp);
        let group_entropy = tape.scale(total, -1.0 / n as f32); // shared

        let xs: Vec<Var> = groupings
            .iter()
            .map(|g| {
                let emb = embedding::group_features(&self.graph, g, self.num_groups);
                tape.leaf(emb)
            })
            .collect();
        let placer_forced: Option<Vec<&[usize]>> =
            forced.map(|fa| fa.iter().map(|a| &a[n..]).collect());
        let outs =
            self.placer.forward_batch(&mut tape, params, &xs, placer_forced.as_deref(), rngs);

        let eps: Vec<(Vec<usize>, Var, Var)> = groupings
            .into_iter()
            .zip(group_logp_sums)
            .zip(outs)
            .map(|((grouping, gsum), out)| {
                let log_prob = tape.add(gsum, out.log_prob);
                let e2 = tape.add(group_entropy, out.entropy);
                let entropy = tape.scale(e2, 0.5);
                let mut actions = grouping;
                actions.extend_from_slice(&out.actions);
                (actions, log_prob, entropy)
            })
            .collect();
        (tape, eps)
    }
}

impl StochasticPolicy for HpAgent {
    fn rng_draws_per_sample(&self) -> usize {
        self.action_len()
    }

    fn sample_batch(
        &self,
        params: &Params,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<(Vec<usize>, f32)> {
        let (tape, eps) = self.forward_batch(params, None, rngs);
        eps.into_iter()
            .map(|(actions, log_prob, _)| (actions, tape.value(log_prob).item()))
            .collect()
    }

    fn score_batch(&self, params: &Params, actions: &[Vec<usize>]) -> BatchScoreHandle {
        for a in actions {
            assert_eq!(a.len(), self.action_len(), "full action vector required");
        }
        let forced: Vec<&[usize]> = actions.iter().map(|a| a.as_slice()).collect();
        let (tape, eps) = self.forward_batch(params, Some(&forced), &mut []);
        let episodes = eps
            .into_iter()
            .map(|(_, log_prob, entropy)| EpisodeScore { log_prob, entropy, aux_loss: None })
            .collect();
        BatchScoreHandle { tape, episodes }
    }

    // Per-episode overrides keep the original single-episode path as an
    // independent reference for the batched one (bit-identical by contract).
    fn sample(&self, params: &Params, rng: &mut dyn rand::RngCore) -> (Vec<usize>, f32) {
        let (tape, actions, log_prob, _) = self.forward(params, None, rng);
        let logp = tape.value(log_prob).item();
        (actions, logp)
    }

    fn score(&self, params: &Params, actions: &[usize]) -> ScoreHandle {
        use rand::SeedableRng;
        assert_eq!(actions.len(), self.action_len(), "full action vector required");
        let mut noop = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let (tape, _, log_prob, entropy) = self.forward(params, Some(actions), &mut noop);
        ScoreHandle { tape, log_prob, entropy, aux_loss: None }
    }
}

impl PlacementAgent for HpAgent {
    fn name(&self) -> &str {
        "Hierarchical Planner"
    }

    fn decode_batch(&self, _params: &Params, actions: &[Vec<usize>]) -> Vec<Placement> {
        let n = self.graph.len();
        actions
            .iter()
            .map(|a| {
                assert_eq!(a.len(), self.action_len(), "full action vector required");
                let group_devices: Vec<DeviceId> =
                    a[n..].iter().map(|&d| self.devices[d]).collect();
                Placement::from_groups(&a[..n], &group_devices)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::builders;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Params, HpAgent, OpGraph, Machine) {
        let g = builders::try_gnmt(&builders::GnmtConfig {
            batch: 2,
            hidden: 4,
            layers: 2,
            seq_len: 3,
            vocab: 20,
        })
        .expect("valid GNMT config");
        let m = Machine::paper_machine();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let agent = HpAgent::new(&mut params, &g, &m, AgentScale::tiny(), &mut rng);
        (params, agent, g, m)
    }

    #[test]
    fn action_vector_covers_ops_and_groups() {
        let (params, agent, g, m) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (actions, _) = agent.sample(&params, &mut rng);
        assert_eq!(actions.len(), g.len() + agent.num_groups());
        assert!(actions[..g.len()].iter().all(|&a| a < agent.num_groups()));
        assert!(actions[g.len()..].iter().all(|&a| a < m.num_devices()));
        let p = agent.decode(&params, &actions);
        assert!(p.validate(&g, &m).is_ok());
    }

    #[test]
    fn grouping_is_resampled_each_rollout() {
        // Unlike EAGLE's deterministic argmax grouping, HP samples its grouping —
        // two rollouts with different RNG states should (almost surely) differ.
        let (params, agent, g, _) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (a1, _) = agent.sample(&params, &mut rng);
        let (a2, _) = agent.sample(&params, &mut rng);
        assert_ne!(a1[..g.len()], a2[..g.len()], "grouping should be stochastic");
    }

    #[test]
    fn score_matches_sample_log_prob() {
        let (params, agent, _, _) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (actions, logp) = agent.sample(&params, &mut rng);
        let h = agent.score(&params, &actions);
        let rescored = h.tape.value(h.log_prob).item();
        // n-op log-probs accumulate more float error than EAGLE's k-group ones.
        assert!((logp - rescored).abs() < 1e-2, "{logp} vs {rescored}");
    }

    #[test]
    fn gradients_reach_both_subnetworks() {
        let (mut params, agent, _, _) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (actions, _) = agent.sample(&params, &mut rng);
        let mut h = agent.score(&params, &actions);
        let loss = h.tape.neg(h.log_prob);
        h.tape.backward(loss, &mut params);
        for prefix in ["hp/grouper", "hp/placer"] {
            let grad: f32 = params
                .ids()
                .filter(|&id| params.name(id).starts_with(prefix))
                .map(|id| params.grad(id).norm())
                .sum();
            assert!(grad > 0.0, "{prefix} must receive gradient");
        }
    }
}
