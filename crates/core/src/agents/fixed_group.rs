//! Agents with a *fixed* grouping and a learned placer.
//!
//! These cover three of the paper's studies:
//! * Table I — heuristic groupers (METIS / fluid communities) under the
//!   hierarchical model's placer;
//! * Table II — placer comparison (seq2seq before/after attention vs GCN) with a
//!   fixed METIS grouping;
//! * the Post baseline — fixed groups plus a "simple neural network" placer,
//!   trained with PPO + cross-entropy minimization.

use eagle_devsim::{DeviceId, Machine, Placement};
use eagle_nn::{
    embedding, normalize_adjacency, AttentionMode, GcnPlacer, Placer, Seq2SeqPlacer, SimplePlacer,
};
use eagle_opgraph::OpGraph;
use eagle_rl::{BatchScoreHandle, EpisodeScore, ScoreHandle, StochasticPolicy};
use eagle_tensor::{Params, Tape, Tensor};
use rand::Rng;

use crate::scale::AgentScale;

use super::PlacementAgent;

/// Which placer network a [`FixedGroupAgent`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacerKind {
    /// Seq2seq with attention before the decoder (EAGLE's choice).
    Seq2SeqBefore,
    /// Seq2seq with attention after the decoder (Hierarchical Planner's choice).
    Seq2SeqAfter,
    /// Two-layer GCN over the group graph.
    Gcn,
    /// Post's simple per-group MLP.
    Simple,
}

impl PlacerKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            PlacerKind::Seq2SeqBefore => "Seq2Seq(before)",
            PlacerKind::Seq2SeqAfter => "Seq2Seq(after)",
            PlacerKind::Gcn => "GCN",
            PlacerKind::Simple => "Simple",
        }
    }
}

/// A placement agent over a fixed op-to-group assignment.
pub struct FixedGroupAgent {
    name: String,
    group_of: Vec<usize>,
    emb: Tensor,
    placer: Box<dyn Placer + Send + Sync>,
    devices: Vec<DeviceId>,
    num_groups: usize,
}

impl FixedGroupAgent {
    /// Builds the agent. `group_of` assigns each op of `graph` to one of `k`
    /// groups (from a heuristic partitioner or any other source).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut Params,
        name: impl Into<String>,
        graph: &OpGraph,
        machine: &Machine,
        group_of: Vec<usize>,
        num_groups: usize,
        kind: PlacerKind,
        scale: AgentScale,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(group_of.len(), graph.len(), "one group per op");
        assert!(group_of.iter().all(|&g| g < num_groups), "group index in range");
        let name = name.into();
        let emb = embedding::group_features(graph, &group_of, num_groups);
        let d_in = emb.cols();
        let devices = super::device_table(machine);
        let nd = devices.len();
        let pname = format!("{name}/placer");
        let placer: Box<dyn Placer + Send + Sync> = match kind {
            PlacerKind::Seq2SeqBefore => Box::new(Seq2SeqPlacer::new(
                params,
                &pname,
                d_in,
                scale.placer_hidden,
                scale.attn_dim,
                nd,
                AttentionMode::Before,
                rng,
            )),
            PlacerKind::Seq2SeqAfter => Box::new(Seq2SeqPlacer::new(
                params,
                &pname,
                d_in,
                scale.placer_hidden,
                scale.attn_dim,
                nd,
                AttentionMode::After,
                rng,
            )),
            PlacerKind::Gcn => {
                let adj = normalize_adjacency(graph, &group_of, num_groups);
                Box::new(GcnPlacer::new(params, &pname, d_in, scale.simple_hidden, nd, adj, rng))
            }
            PlacerKind::Simple => {
                Box::new(SimplePlacer::new(params, &pname, d_in, scale.simple_hidden, nd, rng))
            }
        };
        Self { name, group_of, emb, placer, devices, num_groups }
    }

    /// Builds the Post baseline: fixed groups + simple placer. Post groups
    /// operations before placing (manually / by co-location in its paper); we hand
    /// it the same groups the experiment uses for the other fixed-group agents.
    pub fn post(
        params: &mut Params,
        graph: &OpGraph,
        machine: &Machine,
        group_of: Vec<usize>,
        num_groups: usize,
        scale: AgentScale,
        rng: &mut impl Rng,
    ) -> Self {
        let mut agent = Self::new(
            params,
            "post",
            graph,
            machine,
            group_of,
            num_groups,
            PlacerKind::Simple,
            scale,
            rng,
        );
        agent.name = "Post".into();
        agent
    }

    /// The fixed grouping.
    pub fn group_of(&self) -> &[usize] {
        &self.group_of
    }

    /// Number of groups (= action-vector length).
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }
}

impl StochasticPolicy for FixedGroupAgent {
    fn rng_draws_per_sample(&self) -> usize {
        self.num_groups
    }

    fn sample_batch(
        &self,
        params: &Params,
        rngs: &mut [&mut dyn rand::RngCore],
    ) -> Vec<(Vec<usize>, f32)> {
        let mut tape = Tape::new();
        // One leaf Var shared by every episode: the placer runs its shared
        // stages (e.g. the seq2seq encoder) once for the whole batch.
        let x = tape.leaf(self.emb.clone());
        let xs = vec![x; rngs.len()];
        let outs = self.placer.forward_batch(&mut tape, params, &xs, None, rngs);
        outs.into_iter().map(|out| (out.actions, tape.value(out.log_prob).item())).collect()
    }

    fn score_batch(&self, params: &Params, actions: &[Vec<usize>]) -> BatchScoreHandle {
        let forced: Vec<&[usize]> = actions.iter().map(|a| a.as_slice()).collect();
        let mut tape = Tape::new();
        let x = tape.leaf(self.emb.clone());
        let xs = vec![x; actions.len()];
        let outs = self.placer.forward_batch(&mut tape, params, &xs, Some(&forced), &mut []);
        let episodes = outs
            .into_iter()
            .map(|out| EpisodeScore {
                log_prob: out.log_prob,
                entropy: out.entropy,
                aux_loss: None,
            })
            .collect();
        BatchScoreHandle { tape, episodes }
    }

    // Per-episode overrides keep the original single-episode path as an
    // independent reference for the batched one (bit-identical by contract).
    fn sample(&self, params: &Params, rng: &mut dyn rand::RngCore) -> (Vec<usize>, f32) {
        let mut tape = Tape::new();
        let x = tape.leaf(self.emb.clone());
        let out = self.placer.forward(&mut tape, params, x, None, rng);
        let logp = tape.value(out.log_prob).item();
        (out.actions, logp)
    }

    fn score(&self, params: &Params, actions: &[usize]) -> ScoreHandle {
        use rand::SeedableRng;
        let mut noop = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut tape = Tape::new();
        let x = tape.leaf(self.emb.clone());
        let out = self.placer.forward(&mut tape, params, x, Some(actions), &mut noop);
        ScoreHandle { tape, log_prob: out.log_prob, entropy: out.entropy, aux_loss: None }
    }
}

impl PlacementAgent for FixedGroupAgent {
    fn name(&self) -> &str {
        &self.name
    }

    fn decode_batch(&self, _params: &Params, actions: &[Vec<usize>]) -> Vec<Placement> {
        actions
            .iter()
            .map(|a| {
                assert_eq!(a.len(), self.num_groups, "one device per group");
                let group_devices: Vec<DeviceId> = a.iter().map(|&d| self.devices[d]).collect();
                Placement::from_groups(&self.group_of, &group_devices)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::builders;
    use eagle_partition::{metis_like::MetisLike, Partitioner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph() -> OpGraph {
        builders::try_gnmt(&builders::GnmtConfig {
            batch: 2,
            hidden: 4,
            layers: 2,
            seq_len: 3,
            vocab: 20,
        })
        .expect("valid GNMT config")
    }

    fn build(kind: PlacerKind) -> (Params, FixedGroupAgent, OpGraph, Machine) {
        let g = graph();
        let m = Machine::paper_machine();
        let k = 6;
        let group_of = MetisLike::default().partition(&g, k);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let agent = FixedGroupAgent::new(
            &mut params,
            "t",
            &g,
            &m,
            group_of,
            k,
            kind,
            AgentScale::tiny(),
            &mut rng,
        );
        (params, agent, g, m)
    }

    #[test]
    fn all_placer_kinds_sample_and_decode() {
        for kind in [
            PlacerKind::Seq2SeqBefore,
            PlacerKind::Seq2SeqAfter,
            PlacerKind::Gcn,
            PlacerKind::Simple,
        ] {
            let (params, agent, g, m) = build(kind);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let (actions, logp) = agent.sample(&params, &mut rng);
            assert_eq!(actions.len(), agent.num_groups(), "{kind:?}");
            assert!(logp.is_finite(), "{kind:?}");
            let p = agent.decode(&params, &actions);
            assert!(p.validate(&g, &m).is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn score_consistency_across_kinds() {
        for kind in [PlacerKind::Seq2SeqBefore, PlacerKind::Gcn, PlacerKind::Simple] {
            let (params, agent, _, _) = build(kind);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let (actions, logp) = agent.sample(&params, &mut rng);
            let h = agent.score(&params, &actions);
            let rescored = h.tape.value(h.log_prob).item();
            assert!((logp - rescored).abs() < 1e-3, "{kind:?}: {logp} vs {rescored}");
        }
    }

    #[test]
    fn post_constructor_names_and_places() {
        let g = graph();
        let m = Machine::paper_machine();
        let k = 4;
        let group_of = MetisLike::default().partition(&g, k);
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let post =
            FixedGroupAgent::post(&mut params, &g, &m, group_of, k, AgentScale::tiny(), &mut rng);
        assert_eq!(post.name(), "Post");
        let mut rng2 = ChaCha8Rng::seed_from_u64(8);
        let (actions, _) = post.sample(&params, &mut rng2);
        assert_eq!(actions.len(), k);
    }

    #[test]
    #[should_panic(expected = "one group per op")]
    fn wrong_group_len_panics() {
        let g = graph();
        let m = Machine::paper_machine();
        let mut params = Params::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = FixedGroupAgent::new(
            &mut params,
            "bad",
            &g,
            &m,
            vec![0; 3],
            4,
            PlacerKind::Simple,
            AgentScale::tiny(),
            &mut rng,
        );
    }
}
