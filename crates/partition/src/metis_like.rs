//! METIS-style multilevel k-way partitioning.
//!
//! The classic three phases (Karypis & Kumar '98):
//! 1. **Coarsening** — heavy-edge matching repeatedly contracts the graph until it is
//!    small relative to `k`.
//! 2. **Initial partitioning** — greedy region growing over the coarsest graph,
//!    seeding groups round-robin and growing along heavy edges under a balance cap.
//! 3. **Uncoarsening + refinement** — project the assignment back level by level,
//!    running boundary Fiduccia–Mattheyses-style moves at each level.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Partitioner, WeightedGraph};

/// Multilevel k-way partitioner (the paper's "METIS" grouper).
#[derive(Debug, Clone)]
pub struct MetisLike {
    /// RNG seed (tie-breaking during matching and refinement order).
    pub seed: u64,
    /// Allowed imbalance: a group may carry up to `(1 + epsilon) * total / k`.
    pub epsilon: f64,
    /// Refinement passes per level.
    pub refine_passes: usize,
}

impl Default for MetisLike {
    fn default() -> Self {
        Self { seed: 1, epsilon: 0.30, refine_passes: 6 }
    }
}

impl Partitioner for MetisLike {
    fn name(&self) -> &str {
        "METIS"
    }

    fn partition(&self, graph: &eagle_opgraph::OpGraph, k: usize) -> Vec<usize> {
        let w = WeightedGraph::from_op_graph(graph);
        partition_weighted(&w, k, self)
    }
}

/// Partitions a pre-built weighted graph (exposed for tests and reuse).
pub fn partition_weighted(w: &WeightedGraph, k: usize, cfg: &MetisLike) -> Vec<usize> {
    let n = w.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1).min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // --- Phase 1: coarsen.
    let mut levels: Vec<(WeightedGraph, Vec<usize>)> = Vec::new(); // (graph, map fine->coarse)
    let mut current = w.clone();
    let target = (4 * k).max(64);
    while current.len() > target {
        let (coarse, map) = coarsen_once(&current, &mut rng);
        if coarse.len() as f64 > current.len() as f64 * 0.95 {
            break; // matching stalled; stop coarsening
        }
        levels.push((current, map));
        current = coarse;
    }

    // --- Phase 2: initial partition of the coarsest graph.
    let mut assign = initial_partition(&current, k, cfg.epsilon, &mut rng);
    refine(&current, &mut assign, k, cfg, &mut rng);

    // --- Phase 3: uncoarsen + refine.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_assign = vec![0usize; fine.len()];
        for (v, &c) in map.iter().enumerate() {
            fine_assign[v] = assign[c];
        }
        assign = fine_assign;
        refine(&fine, &mut assign, k, cfg, &mut rng);
    }
    assign
}

/// One round of heavy-edge matching; returns the contracted graph and the
/// fine-to-coarse vertex map.
fn coarsen_once(w: &WeightedGraph, rng: &mut ChaCha8Rng) -> (WeightedGraph, Vec<usize>) {
    let n = w.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; n];
    let mut next_coarse = 0usize;
    for &v in &order {
        if matched[v] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(usize, f64)> = None;
        for &(u, ew) in &w.adj[v] {
            if matched[u] == usize::MAX && u != v && best.is_none_or(|(_, bw)| ew > bw) {
                best = Some((u, ew));
            }
        }
        let c = next_coarse;
        next_coarse += 1;
        matched[v] = c;
        if let Some((u, _)) = best {
            matched[u] = c;
        }
    }
    let m = next_coarse;
    let mut node_weight = vec![0.0f64; m];
    for v in 0..n {
        node_weight[matched[v]] += w.node_weight[v];
    }
    let mut adj_maps: Vec<std::collections::HashMap<usize, f64>> =
        vec![std::collections::HashMap::new(); m];
    for v in 0..n {
        let cv = matched[v];
        for &(u, ew) in &w.adj[v] {
            let cu = matched[u];
            if cu != cv {
                *adj_maps[cv].entry(cu).or_insert(0.0) += ew;
            }
        }
    }
    let adj = adj_maps
        .into_iter()
        .map(|mp| {
            let mut v: Vec<(usize, f64)> = mp.into_iter().collect();
            v.sort_unstable_by_key(|&(i, _)| i);
            v
        })
        .collect();
    (WeightedGraph { node_weight, adj }, matched)
}

/// Greedy region growing: seed `k` groups at heavy, spread-out vertices, then grow
/// each along its heaviest boundary edges under the balance cap; leftovers go to the
/// lightest group.
fn initial_partition(
    w: &WeightedGraph,
    k: usize,
    epsilon: f64,
    rng: &mut ChaCha8Rng,
) -> Vec<usize> {
    let n = w.len();
    let cap = (1.0 + epsilon) * w.total_weight() / k as f64;
    let mut assign = vec![usize::MAX; n];
    let mut loads = vec![0.0f64; k];

    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.shuffle(rng);
    seeds.truncate(k);
    // Frontier of (gain, vertex, group) candidates, greedily popped.
    let mut heap: std::collections::BinaryHeap<(ordered, usize, usize)> =
        std::collections::BinaryHeap::new();
    for (g, &s) in seeds.iter().enumerate() {
        assign[s] = g;
        loads[g] += w.node_weight[s];
        for &(u, ew) in &w.adj[s] {
            heap.push((ordered::from(ew), u, g));
        }
    }
    while let Some((_, v, g)) = heap.pop() {
        if assign[v] != usize::MAX || loads[g] + w.node_weight[v] > cap {
            continue;
        }
        assign[v] = g;
        loads[g] += w.node_weight[v];
        for &(u, ew) in &w.adj[v] {
            if assign[u] == usize::MAX {
                heap.push((ordered::from(ew), u, g));
            }
        }
    }
    // Unreached vertices (disconnected or capped out): lightest group.
    for (v, a) in assign.iter_mut().enumerate() {
        if *a == usize::MAX {
            let g = (0..k).min_by(|&x, &y| loads[x].total_cmp(&loads[y])).expect("k >= 1");
            *a = g;
            loads[g] += w.node_weight[v];
        }
    }
    assign
}

/// Boundary FM-style refinement: move vertices to the neighboring group with the
/// best cut gain, respecting the balance cap; repeats for `refine_passes` or until
/// a pass makes no move.
fn refine(
    w: &WeightedGraph,
    assign: &mut [usize],
    k: usize,
    cfg: &MetisLike,
    rng: &mut ChaCha8Rng,
) {
    let n = w.len();
    let cap = (1.0 + cfg.epsilon) * w.total_weight() / k as f64;
    let mut loads = vec![0.0f64; k];
    for v in 0..n {
        loads[assign[v]] += w.node_weight[v];
    }
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.refine_passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let from = assign[v];
            // Connectivity of v to each adjacent group.
            let mut conn: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &(u, ew) in &w.adj[v] {
                *conn.entry(assign[u]).or_insert(0.0) += ew;
            }
            let internal = conn.get(&from).copied().unwrap_or(0.0);
            // Iterate groups in index order: HashMap order is randomized per
            // process, and equal-gain ties must break the same way every run
            // for a fixed seed to give a fixed partition.
            let mut groups: Vec<(usize, f64)> = conn.iter().map(|(&g, &c)| (g, c)).collect();
            groups.sort_unstable_by_key(|&(g, _)| g);
            let mut best: Option<(usize, f64)> = None;
            for (g, c) in groups {
                if g == from {
                    continue;
                }
                let gain = c - internal;
                if gain > 1e-12
                    && loads[g] + w.node_weight[v] <= cap
                    && best.is_none_or(|(_, bg)| gain > bg)
                {
                    best = Some((g, gain));
                }
            }
            if let Some((g, _)) = best {
                loads[from] -= w.node_weight[v];
                loads[g] += w.node_weight[v];
                assign[v] = g;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    let _ = rng.gen::<u8>(); // keep stream moving even on early exit (determinism aid)
}

/// f64 heap key ordered by `total_cmp`.
#[derive(PartialEq)]
#[allow(non_camel_case_types)]
struct ordered(f64);

impl ordered {
    fn from(x: f64) -> Self {
        Self(x)
    }
}
impl Eq for ordered {}
impl PartialOrd for ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use eagle_opgraph::builders;

    #[test]
    fn two_cliques_split_cleanly() {
        // Two 6-cliques joined by one light edge: the 2-way partition must cut only
        // the bridge.
        let mut g = eagle_opgraph::OpGraph::new("cliques");
        use eagle_opgraph::{OpKind, OpNode, Phase};
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(
                g.add_node(
                    OpNode::new(format!("n{i}"), OpKind::MatMul, Phase::Forward)
                        .with_flops(1.0)
                        .with_out_bytes(1000),
                ),
            );
        }
        for c in 0..2 {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    g.add_edge(ids[c * 6 + i], ids[c * 6 + j]);
                }
            }
        }
        // Light bridge.
        g.node_mut(ids[5]).out_bytes = 0;
        g.add_edge(ids[5], ids[6]);

        let assign = MetisLike::default().partition(&g, 2);
        assert_eq!(assign.len(), 12);
        let first = assign[0];
        assert!(assign[..6].iter().all(|&a| a == first), "first clique together: {assign:?}");
        let second = assign[6];
        assert_ne!(first, second);
        assert!(assign[6..].iter().all(|&a| a == second), "second clique together: {assign:?}");
    }

    #[test]
    fn partitions_real_graph_with_balance() {
        let g = builders::try_gnmt(&builders::GnmtConfig {
            batch: 8,
            hidden: 16,
            layers: 2,
            seq_len: 6,
            vocab: 100,
        })
        .expect("valid GNMT config");
        let k = 8;
        let assign = MetisLike::default().partition(&g, k);
        assert_eq!(assign.len(), g.len());
        assert!(assign.iter().all(|&a| a < k));
        let w = WeightedGraph::from_op_graph(&g);
        let bal = metrics::balance(&w, &assign, k);
        assert!(bal < 2.0, "balance {bal} too skewed");
        assert!(metrics::used_groups(&assign, k) >= k / 2, "most groups used");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = builders::try_inception_v3(&builders::InceptionConfig::default())
            .expect("default Inception config is valid");
        let a = MetisLike::default().partition(&g, 16);
        let b = MetisLike::default().partition(&g, 16);
        assert_eq!(a, b);
        let c = MetisLike { seed: 99, ..Default::default() }.partition(&g, 16);
        // Different seed is allowed to differ (and usually does).
        let _ = c;
    }

    #[test]
    fn beats_random_on_cut() {
        use rand::Rng;
        let g = builders::try_inception_v3(&builders::InceptionConfig::default())
            .expect("default Inception config is valid");
        let w = WeightedGraph::from_op_graph(&g);
        let k = 16;
        let metis = MetisLike::default().partition(&g, k);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let random: Vec<usize> = (0..g.len()).map(|_| rng.gen_range(0..k)).collect();
        assert!(
            metrics::edge_cut(&w, &metis) < metrics::edge_cut(&w, &random) / 2.0,
            "multilevel partitioner should crush random cuts"
        );
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let g = builders::try_gnmt(&builders::GnmtConfig {
            batch: 1,
            hidden: 2,
            layers: 2,
            seq_len: 2,
            vocab: 10,
        })
        .expect("valid GNMT config");
        let assign = MetisLike::default().partition(&g, 10_000);
        assert!(assign.iter().all(|&a| a < g.len()));
    }
}
