//! Partition-quality metrics: edge cut and load balance.

use eagle_opgraph::OpGraph;

use crate::WeightedGraph;

/// Sum of weights of edges whose endpoints live in different groups
/// (each undirected edge counted once).
pub fn edge_cut(w: &WeightedGraph, assign: &[usize]) -> f64 {
    let mut cut = 0.0;
    for (u, nbrs) in w.adj.iter().enumerate() {
        for &(v, ew) in nbrs {
            if u < v && assign[u] != assign[v] {
                cut += ew;
            }
        }
    }
    cut
}

/// Edge cut in raw bytes over the original directed op graph.
pub fn cut_bytes(g: &OpGraph, assign: &[usize]) -> u64 {
    g.edges()
        .filter(|&(u, v)| assign[u.index()] != assign[v.index()])
        .map(|(u, _)| g.node(u).out_bytes)
        .sum()
}

/// Maximum group weight divided by the ideal (total / k); 1.0 is perfect balance.
pub fn balance(w: &WeightedGraph, assign: &[usize], k: usize) -> f64 {
    let mut loads = vec![0.0f64; k];
    for (i, &g) in assign.iter().enumerate() {
        loads[g] += w.node_weight[i];
    }
    let ideal = w.total_weight() / k as f64;
    loads.iter().cloned().fold(0.0, f64::max) / ideal.max(f64::MIN_POSITIVE)
}

/// Number of non-empty groups.
pub fn used_groups(assign: &[usize], k: usize) -> usize {
    let mut seen = vec![false; k];
    for &g in assign {
        seen[g] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    fn path(n: usize) -> OpGraph {
        let mut g = OpGraph::new("p");
        let mut prev = None;
        for i in 0..n {
            let id = g.add_node(
                OpNode::new(format!("n{i}"), OpKind::MatMul, Phase::Forward)
                    .with_flops(1.0)
                    .with_out_bytes(9),
            );
            if let Some(p) = prev {
                g.add_edge(p, id);
            }
            prev = Some(id);
        }
        g
    }

    #[test]
    fn cut_and_balance_on_path() {
        let g = path(4);
        let w = WeightedGraph::from_op_graph(&g);
        // Split in the middle: one cut edge of weight 10.
        let assign = vec![0, 0, 1, 1];
        assert_eq!(edge_cut(&w, &assign), 10.0);
        assert_eq!(cut_bytes(&g, &assign), 9);
        assert!((balance(&w, &assign, 2) - 1.0).abs() < 1e-9);
        // Everything in one group: zero cut, balance = k.
        let one = vec![0, 0, 0, 0];
        assert_eq!(edge_cut(&w, &one), 0.0);
        assert_eq!(balance(&w, &one, 2), 2.0);
        assert_eq!(used_groups(&one, 2), 1);
        assert_eq!(used_groups(&assign, 2), 2);
    }
}
