//! # eagle-partition
//!
//! Graph-partitioning heuristics used as *grouper* baselines in the paper's Sec. III-B
//! (Table I / Fig. 2): a METIS-style multilevel k-way partitioner and the asynchronous
//! fluid-communities algorithm from NetworkX.
//!
//! Both consume an [`eagle_opgraph::OpGraph`] viewed as an undirected
//! weighted graph — edge weight is the bytes transferred between the two ops, node
//! weight is the op's FLOPs — and both minimize edge cut under a balance constraint,
//! which is exactly how the paper wires them into the hierarchical model in place of
//! the learned feed-forward grouper.

#![warn(missing_docs)]

pub mod fluid;
pub mod metis_like;
pub mod metrics;

use eagle_opgraph::OpGraph;

/// A grouping algorithm: assigns each op to one of `k` groups.
pub trait Partitioner {
    /// Human-readable name for tables ("METIS", "Networkx", ...).
    fn name(&self) -> &str;

    /// Partitions `graph` into at most `k` groups. The returned vector has one
    /// entry per op, each in `0..k`. Implementations must be deterministic for a
    /// fixed seed.
    fn partition(&self, graph: &OpGraph, k: usize) -> Vec<usize>;
}

/// Undirected weighted view of an op graph, shared by the partitioners.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// Per-node weight (FLOPs, floored to 1 so balance is meaningful).
    pub node_weight: Vec<f64>,
    /// Adjacency: `(neighbor, edge_weight)` per node; both directions present.
    pub adj: Vec<Vec<(usize, f64)>>,
}

impl WeightedGraph {
    /// Builds the undirected view of an [`OpGraph`]. Edge weight is the producer's
    /// output bytes (+1 so zero-byte control edges still bind); parallel edges
    /// merge by summing.
    pub fn from_op_graph(g: &OpGraph) -> Self {
        let n = g.len();
        let node_weight: Vec<f64> = g.nodes().iter().map(|nd| nd.flops.max(1.0)).collect();
        let mut adj: Vec<std::collections::HashMap<usize, f64>> =
            vec![std::collections::HashMap::new(); n];
        for (u, v) in g.edges() {
            let w = g.node(u).out_bytes as f64 + 1.0;
            *adj[u.index()].entry(v.index()).or_insert(0.0) += w;
            *adj[v.index()].entry(u.index()).or_insert(0.0) += w;
        }
        Self {
            node_weight,
            adj: adj
                .into_iter()
                .map(|m| {
                    let mut v: Vec<(usize, f64)> = m.into_iter().collect();
                    v.sort_unstable_by_key(|&(i, _)| i);
                    v
                })
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_weight.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_weight.is_empty()
    }

    /// Total node weight.
    pub fn total_weight(&self) -> f64 {
        self.node_weight.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagle_opgraph::{OpKind, OpNode, Phase};

    #[test]
    fn weighted_view_symmetric() {
        let mut g = OpGraph::new("t");
        let a = g.add_node(
            OpNode::new("a", OpKind::MatMul, Phase::Forward).with_flops(10.0).with_out_bytes(99),
        );
        let b = g.add_node(OpNode::new("b", OpKind::MatMul, Phase::Forward));
        g.add_edge(a, b);
        let w = WeightedGraph::from_op_graph(&g);
        assert_eq!(w.len(), 2);
        assert_eq!(w.adj[0], vec![(1, 100.0)]);
        assert_eq!(w.adj[1], vec![(0, 100.0)]);
        assert_eq!(w.node_weight[0], 10.0);
        assert_eq!(w.node_weight[1], 1.0, "zero flops floored to 1");
    }
}
