//! Asynchronous fluid communities (Parés et al. '17), the algorithm behind
//! NetworkX's `asyn_fluidc` — the paper's "Networkx" grouper baseline.
//!
//! `k` communities start from random seeds; vertices are visited in random order and
//! adopt the community with the highest total *density* among themselves and their
//! neighbors, where a community's density is `1 / |community|`. Iteration stops when
//! a sweep changes nothing or the iteration cap is reached.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Partitioner, WeightedGraph};

/// Asynchronous fluid-communities partitioner.
#[derive(Debug, Clone)]
pub struct FluidCommunities {
    /// RNG seed for seeding and visit order.
    pub seed: u64,
    /// Maximum sweeps over all vertices (NetworkX defaults to 100).
    pub max_iter: usize,
}

impl Default for FluidCommunities {
    fn default() -> Self {
        Self { seed: 1, max_iter: 100 }
    }
}

impl Partitioner for FluidCommunities {
    fn name(&self) -> &str {
        "Networkx"
    }

    fn partition(&self, graph: &eagle_opgraph::OpGraph, k: usize) -> Vec<usize> {
        let w = WeightedGraph::from_op_graph(graph);
        partition_weighted(&w, k, self)
    }
}

/// Runs fluid communities over a weighted view (exposed for tests).
pub fn partition_weighted(w: &WeightedGraph, k: usize, cfg: &FluidCommunities) -> Vec<usize> {
    let n = w.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.max(1).min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    let mut assign: Vec<Option<usize>> = vec![None; n];
    let mut sizes = vec![0usize; k];
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.shuffle(&mut rng);
    for (c, &s) in seeds.iter().take(k).enumerate() {
        assign[s] = Some(c);
        sizes[c] = 1;
    }

    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.max_iter {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            // Density votes from self and neighbors, weighted by edge weight so the
            // algorithm respects communication volume (NetworkX uses unweighted
            // counts; the weighting specializes it to the device-placement setting).
            let mut votes: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            if let Some(c) = assign[v] {
                *votes.entry(c).or_insert(0.0) += 1.0 / sizes[c].max(1) as f64;
            }
            for &(u, ew) in &w.adj[v] {
                if let Some(c) = assign[u] {
                    *votes.entry(c).or_insert(0.0) += ew.ln_1p() / sizes[c].max(1) as f64;
                }
            }
            if votes.is_empty() {
                continue;
            }
            let (&best, _) = votes
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
                .expect("non-empty votes");
            if assign[v] != Some(best) {
                // A community may not vanish: keep the last vertex of a community.
                if let Some(old) = assign[v] {
                    if sizes[old] <= 1 {
                        continue;
                    }
                    sizes[old] -= 1;
                }
                assign[v] = Some(best);
                sizes[best] += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Unassigned vertices (isolated / unreachable from any seed): smallest group.
    assign
        .into_iter()
        .map(|a| a.unwrap_or_else(|| (0..k).min_by_key(|&c| sizes[c]).expect("k >= 1")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use eagle_opgraph::builders;

    #[test]
    fn covers_all_vertices_within_k() {
        let g = builders::try_inception_v3(&builders::InceptionConfig::default())
            .expect("default Inception config is valid");
        let k = 16;
        let assign = FluidCommunities::default().partition(&g, k);
        assert_eq!(assign.len(), g.len());
        assert!(assign.iter().all(|&a| a < k));
        assert!(metrics::used_groups(&assign, k) > 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = builders::try_gnmt(&builders::GnmtConfig {
            batch: 4,
            hidden: 8,
            layers: 2,
            seq_len: 4,
            vocab: 64,
        })
        .expect("valid GNMT config");
        let a = FluidCommunities::default().partition(&g, 8);
        let b = FluidCommunities::default().partition(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn communities_are_locally_coherent() {
        // On two cliques with a bridge, fluid communities should separate them.
        use eagle_opgraph::{OpGraph, OpKind, OpNode, Phase};
        let mut g = OpGraph::new("cliques");
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(
                g.add_node(
                    OpNode::new(format!("n{i}"), OpKind::MatMul, Phase::Forward)
                        .with_flops(1.0)
                        .with_out_bytes(1000),
                ),
            );
        }
        for c in 0..2 {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    g.add_edge(ids[c * 6 + i], ids[c * 6 + j]);
                }
            }
        }
        g.node_mut(ids[5]).out_bytes = 0;
        g.add_edge(ids[5], ids[6]);
        let assign = FluidCommunities { seed: 4, max_iter: 100 }.partition(&g, 2);
        let w = WeightedGraph::from_op_graph(&g);
        // At most the bridge (+ a straggler) crosses.
        assert!(
            metrics::edge_cut(&w, &assign) <= 3.0 * 1001.0,
            "cut = {}",
            metrics::edge_cut(&w, &assign)
        );
    }

    #[test]
    fn better_cut_than_random_on_real_graph() {
        use rand::Rng;
        let g = builders::try_bert_base(&builders::BertConfig {
            batch: 2,
            seq_len: 8,
            hidden: 16,
            layers: 3,
            heads: 2,
            ff: 32,
            vocab: 50,
        })
        .expect("valid BERT config");
        let w = WeightedGraph::from_op_graph(&g);
        let k = 8;
        let fluid = FluidCommunities::default().partition(&g, k);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let random: Vec<usize> = (0..g.len()).map(|_| rng.gen_range(0..k)).collect();
        assert!(metrics::edge_cut(&w, &fluid) < metrics::edge_cut(&w, &random));
    }
}
