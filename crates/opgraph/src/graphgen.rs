//! GraphGen: config-driven, seed-deterministic synthetic op-graph generation.
//!
//! The three hand-built benchmark graphs ([`crate::builders`]) cover ~10k
//! well-formed ops between them; every policy, oracle, and bench used to see
//! only those. `GraphGen` generates a *distribution* of realistic training
//! graphs instead: each sample composes inception-style branch blocks, LSTM
//! stacks, transformer layers, and MoE-style wide fan-outs into an arbitrary
//! DAG (tens to 100k+ ops), with per-sample randomization of motif mix,
//! fan-out, depth, and memory pressure.
//!
//! Invariants every sample satisfies (checked by [`GraphGen::validate`] and
//! pinned by proptests):
//!
//! * acyclic, and id-ordered: every edge points from a lower to a higher op id,
//!   so insertion order is a topological order;
//! * positive, finite costs — `flops >= 0.0`, `out_bytes >= 4` for every tensor
//!   an op produces;
//! * realistic hierarchical name scopes (`inception3/b2_1x5/conv2d`,
//!   `transformer1/l0/h3/attn`, ...) so the hashed-prefix features in
//!   [`crate::features`] exercise real prefix diversity;
//! * same seed, same config → bit-identical graph (serialized form included).
//!
//! Consumers: the differential oracle in `tests/property_sim.rs` (graphs far
//! beyond the old 40-op cap), the checkpoint fuzzer (valid payloads to mutate),
//! the `graph_scale` bench (10k/50k/100k-op stress graphs), and — per ROADMAP —
//! the multi-graph trainer's training distribution.

use crate::builders::Gb;
use crate::graph::{GraphError, OpGraph, OpId, OpKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Relative sampling weights for the four structural motifs. Weights need not
/// sum to one; a zero weight disables the motif. Each sample additionally
/// jitters the weights by a factor in `[0.5, 1.5]` so the motif *mix* varies
/// across a corpus even under one config.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifWeights {
    /// Inception-style multi-branch convolution blocks joined by a concat.
    pub inception: f64,
    /// Stacked recurrent (LSTM) grids: layers x timesteps of fused cell ops.
    pub lstm: f64,
    /// Transformer encoder layers: per-head attention, FFN, residual + norm.
    pub transformer: f64,
    /// MoE-style wide fan-out: a router plus many parallel experts reduced
    /// back into one tensor.
    pub moe: f64,
}

impl Default for MotifWeights {
    fn default() -> Self {
        Self { inception: 1.0, lstm: 1.0, transformer: 1.0, moe: 1.0 }
    }
}

impl MotifWeights {
    fn sum(&self) -> f64 {
        self.inception + self.lstm + self.transformer + self.moe
    }

    fn validate(&self) -> Result<(), GraphError> {
        for (w, name) in [
            (self.inception, "inception"),
            (self.lstm, "lstm"),
            (self.transformer, "transformer"),
            (self.moe, "moe"),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::BadConfig(format!(
                    "MotifWeights::{name} must be finite and >= 0, got {w}"
                )));
            }
        }
        if self.sum() <= 0.0 {
            return Err(GraphError::BadConfig(
                "MotifWeights must have at least one positive weight".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration surface of the generator. All `(lo, hi)` pairs are inclusive
/// ranges drawn from once per sample (memory pressure, batch) or once per
/// motif instance (fan-out, depth).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphGenConfig {
    /// Approximate size (op count, *including* the mirrored backward pass when
    /// `training`) of each generated graph. Generation stops adding motifs
    /// once the projected size reaches this, so the final size lands within
    /// roughly one motif (a few hundred ops at most) of the target.
    pub target_ops: usize,
    /// Relative motif sampling weights.
    pub motifs: MotifWeights,
    /// Branches per inception block / experts per MoE block, drawn per motif.
    pub fan_out: (usize, usize),
    /// Stacked layers per LSTM / transformer motif, drawn per motif.
    pub depth: (usize, usize),
    /// Log-uniform multiplier on every tensor size, drawn once per sample.
    /// Values well above 1 push tensors toward the `e^30`-byte regime that
    /// stresses the feature scaling.
    pub memory_pressure: (f64, f64),
    /// Batch size, drawn once per sample.
    pub batch: (usize, usize),
    /// Mirror a backward pass + optimizer updates (training graph) or emit the
    /// forward pass only (inference graph).
    pub training: bool,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        Self {
            target_ops: 256,
            motifs: MotifWeights::default(),
            fan_out: (2, 6),
            depth: (1, 4),
            memory_pressure: (0.25, 4.0),
            batch: (1, 32),
            training: true,
        }
    }
}

impl GraphGenConfig {
    /// Default config scaled to roughly `target_ops` operations — the knob the
    /// scale bench and oracle turn.
    pub fn with_target(target_ops: usize) -> Self {
        Self { target_ops, ..Self::default() }
    }

    /// Rejects configs the generator cannot honor: empty or inverted ranges,
    /// non-positive motif weights, sub-minimal target sizes.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.target_ops < 8 {
            return Err(GraphError::BadConfig(format!(
                "target_ops must be >= 8 (stem + head alone take that), got {}",
                self.target_ops
            )));
        }
        self.motifs.validate()?;
        let ((flo, fhi), (dlo, dhi)) = (self.fan_out, self.depth);
        if flo < 1 || flo > fhi {
            return Err(GraphError::BadConfig(format!(
                "fan_out must satisfy 1 <= lo <= hi, got ({flo}, {fhi})"
            )));
        }
        if dlo < 1 || dlo > dhi {
            return Err(GraphError::BadConfig(format!(
                "depth must satisfy 1 <= lo <= hi, got ({dlo}, {dhi})"
            )));
        }
        let (plo, phi) = self.memory_pressure;
        if !(plo.is_finite() && phi.is_finite()) || plo <= 0.0 || plo > phi {
            return Err(GraphError::BadConfig(format!(
                "memory_pressure must satisfy 0 < lo <= hi (finite), got ({plo}, {phi})"
            )));
        }
        let (blo, bhi) = self.batch;
        if blo < 1 || blo > bhi {
            return Err(GraphError::BadConfig(format!(
                "batch must satisfy 1 <= lo <= hi, got ({blo}, {bhi})"
            )));
        }
        Ok(())
    }
}

/// Seed-deterministic generator over a validated [`GraphGenConfig`].
#[derive(Debug, Clone)]
pub struct GraphGen {
    cfg: GraphGenConfig,
}

/// Ops the stem (2) and head (3) contribute forward, times the worst-case
/// training multiplier; the motif loop leaves this much room for the head.
const HEAD_RESERVE: usize = 12;

impl GraphGen {
    /// Validates `cfg` and builds a generator; sampling itself cannot fail.
    pub fn new(cfg: GraphGenConfig) -> Result<Self, GraphError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The config this generator draws from.
    pub fn config(&self) -> &GraphGenConfig {
        &self.cfg
    }

    /// Generates one graph. Same `seed` (and config) → bit-identical graph.
    pub fn sample(&self, seed: u64) -> OpGraph {
        let mut s = Sampler::new(&self.cfg, seed);
        s.stem();
        let mut block = 0usize;
        while s.projection() + HEAD_RESERVE < self.cfg.target_ops {
            s.emit_block(block);
            block += 1;
        }
        s.head();
        let g = if self.cfg.training { s.gb.finish() } else { s.gb.finish_forward() };
        debug_assert!(Self::validate(&g).is_ok());
        g
    }

    /// Checks every generated-graph invariant: the structural/cost checks of
    /// [`OpGraph::validate`] plus the generator's stronger id-ordering
    /// guarantee (every edge goes from a lower to a higher id, making node
    /// order a topological order). Hand-built graphs may legally fail the
    /// ordering check; generated ones never should.
    pub fn validate(g: &OpGraph) -> Result<(), GraphError> {
        g.validate()?;
        for (from, to) in g.edges() {
            if from >= to {
                return Err(GraphError::BadConfig(format!(
                    "edge {} -> {} violates id-ordered construction",
                    from.0, to.0
                )));
            }
        }
        Ok(())
    }
}

/// Which motif a block instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Motif {
    Inception,
    Lstm,
    Transformer,
    Moe,
}

/// One in-flight sample: the graph under construction plus the per-sample
/// draws (batch, width, memory pressure, jittered motif mix).
struct Sampler<'c> {
    cfg: &'c GraphGenConfig,
    rng: ChaCha8Rng,
    gb: Gb,
    /// Output of the most recent block; input to the next.
    frontier: OpId,
    /// Block outputs eligible as skip-connection sources.
    laterals: Vec<OpId>,
    batch: usize,
    hidden: usize,
    pressure: f64,
    weights: MotifWeights,
}

impl<'c> Sampler<'c> {
    fn new(cfg: &'c GraphGenConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let batch = rng.gen_range(cfg.batch.0..=cfg.batch.1);
        let hidden = rng.gen_range(32usize..=512);
        // Log-uniform: a corpus should span the pressure range evenly in
        // orders of magnitude, not cluster at the arithmetic mean.
        let (plo, phi) = cfg.memory_pressure;
        let pressure = (rng.gen_range(plo.ln()..=phi.ln())).exp();
        let jitter = |w: f64, rng: &mut ChaCha8Rng| w * rng.gen_range(0.5..=1.5);
        let weights = MotifWeights {
            inception: jitter(cfg.motifs.inception, &mut rng),
            lstm: jitter(cfg.motifs.lstm, &mut rng),
            transformer: jitter(cfg.motifs.transformer, &mut rng),
            moe: jitter(cfg.motifs.moe, &mut rng),
        };
        let gb = Gb::new(&format!("graphgen/seed{seed}"));
        Self {
            cfg,
            rng,
            gb,
            frontier: OpId(0),
            laterals: Vec::new(),
            batch,
            hidden,
            pressure,
            weights,
        }
    }

    /// Ops the finished graph is projected to contain right now.
    fn projection(&self) -> usize {
        if self.cfg.training {
            self.gb.projected_len()
        } else {
            self.gb.g.len()
        }
    }

    /// Tensor bytes for `elems` f32 elements under this sample's memory
    /// pressure, clamped so downstream u64 arithmetic (4x optimizer slots,
    /// per-device sums) cannot overflow while still reaching the `e^30`-byte
    /// regime that stresses feature scaling.
    fn bytes(&self, elems: f64) -> u64 {
        let e = (elems * self.pressure).clamp(1.0, 1e14);
        (e as u64) * 4
    }

    fn fan_out(&mut self) -> usize {
        self.rng.gen_range(self.cfg.fan_out.0..=self.cfg.fan_out.1)
    }

    fn depth(&mut self) -> usize {
        self.rng.gen_range(self.cfg.depth.0..=self.cfg.depth.1)
    }

    fn pick_motif(&mut self) -> Motif {
        let w = self.weights.clone();
        let x = self.rng.gen::<f64>() * w.sum();
        if x < w.inception {
            Motif::Inception
        } else if x < w.inception + w.lstm {
            Motif::Lstm
        } else if x < w.inception + w.lstm + w.transformer {
            Motif::Transformer
        } else {
            Motif::Moe
        }
    }

    /// Input pipeline + one stem conv, mirroring how every real model starts.
    fn stem(&mut self) {
        let b = self.batch;
        let px = (b * 299 * 299 * 3) as f64;
        let input = self.gb.source("input/pipeline", OpKind::Input, self.bytes(px));
        let w = self.gb.var("stem/conv/weights", self.bytes((3 * self.hidden * 9) as f64));
        self.frontier = self.gb.compute(
            "stem/conv2d",
            OpKind::Conv2d,
            2.0 * px * (self.hidden * 9) as f64,
            self.bytes((b * 149 * 149 * self.hidden) as f64),
            &[input],
            Some(w),
        );
    }

    /// Classification/LM head: projection, softmax, loss.
    fn head(&mut self) {
        let vocab = self.rng.gen_range(100usize..=30_000);
        let h = self.hidden;
        let b = self.batch;
        let w = self.gb.var("head/logits/weights", self.bytes((h * vocab) as f64));
        let logits = self.gb.compute(
            "head/logits/matmul",
            OpKind::MatMul,
            2.0 * (b * h * vocab) as f64,
            self.bytes((b * vocab) as f64),
            &[self.frontier],
            Some(w),
        );
        let probs = self.gb.compute(
            "head/softmax",
            OpKind::Softmax,
            (3 * b * vocab) as f64,
            self.bytes((b * vocab) as f64),
            &[logits],
            None,
        );
        self.frontier = self.gb.compute(
            "head/loss",
            OpKind::Loss,
            (b * vocab) as f64,
            self.bytes(1.0),
            &[probs],
            None,
        );
    }

    /// One randomized block: an occasional skip connection from an earlier
    /// block output, then one weighted-random motif.
    fn emit_block(&mut self, idx: usize) {
        if !self.laterals.is_empty() && self.rng.gen_bool(0.25) {
            let pick = self.rng.gen_range(0..self.laterals.len());
            let skip = self.laterals[pick];
            let bytes = self.gb.g.node(self.frontier).out_bytes;
            self.frontier = self.gb.compute(
                &format!("skip{idx}/add"),
                OpKind::Elementwise,
                (bytes / 4) as f64,
                bytes,
                &[skip, self.frontier],
                None,
            );
        }
        match self.pick_motif() {
            Motif::Inception => self.emit_inception(idx),
            Motif::Lstm => self.emit_lstm(idx),
            Motif::Transformer => self.emit_transformer(idx),
            Motif::Moe => self.emit_moe(idx),
        }
        self.laterals.push(self.frontier);
        if self.laterals.len() > 8 {
            self.laterals.remove(0);
        }
    }

    /// Multi-branch convolution block: `fan_out` parallel branches of 1-3
    /// convs (mixed kernel sizes, occasional batch-norm + activation), joined
    /// by a concat.
    fn emit_inception(&mut self, idx: usize) {
        let scope = format!("inception{idx}");
        let branches = self.fan_out();
        let hw = self.rng.gen_range(7usize..=35);
        let cin = self.hidden;
        let x = self.frontier;
        let mut outs = Vec::with_capacity(branches);
        let mut cat_elems = 0f64;
        for b in 0..branches {
            let convs = self.rng.gen_range(1usize..=3);
            let cout = self.rng.gen_range(16usize..=cin.max(17));
            let mut cur = x;
            let mut c_prev = cin;
            for d in 0..convs {
                let k = [1usize, 3, 5][self.rng.gen_range(0..3usize)];
                let name = format!("{scope}/b{b}_{d}x{k}");
                let w = self
                    .gb
                    .var(&format!("{name}/weights"), self.bytes((c_prev * cout * k * k) as f64));
                let out_elems = (self.batch * hw * hw * cout) as f64;
                cur = self.gb.compute(
                    &format!("{name}/conv2d"),
                    OpKind::Conv2d,
                    2.0 * (self.batch * hw * hw * c_prev * cout * k * k) as f64,
                    self.bytes(out_elems),
                    &[cur],
                    Some(w),
                );
                if self.rng.gen_bool(0.5) {
                    let g = self.gb.var(&format!("{name}/bn/gamma"), self.bytes(cout as f64));
                    cur = self.gb.compute(
                        &format!("{name}/bn"),
                        OpKind::BatchNorm,
                        4.0 * out_elems,
                        self.bytes(out_elems),
                        &[cur],
                        Some(g),
                    );
                    cur = self.gb.compute(
                        &format!("{name}/relu"),
                        OpKind::Activation,
                        out_elems,
                        self.bytes(out_elems),
                        &[cur],
                        None,
                    );
                }
                c_prev = cout;
            }
            cat_elems += (self.batch * hw * hw * c_prev) as f64;
            outs.push(cur);
        }
        self.frontier = self.gb.compute(
            &format!("{scope}/concat"),
            OpKind::Concat,
            cat_elems,
            self.bytes(cat_elems),
            &outs,
            None,
        );
    }

    /// Recurrent grid: `depth` stacked layers x 2-8 timesteps of fused
    /// `LstmCell` ops; each layer shares one kernel variable across steps
    /// (like GNMT), each cell depends on the cell below and the previous
    /// step of its own layer.
    fn emit_lstm(&mut self, idx: usize) {
        let scope = format!("lstm{idx}");
        let layers = self.depth();
        let steps = self.rng.gen_range(2usize..=8);
        let h = self.hidden;
        let cell_flops = 2.0 * (self.batch * 2 * h * 4 * h) as f64;
        let cell_bytes = self.bytes((self.batch * h) as f64);
        let mut below: Vec<OpId> = vec![self.frontier; steps];
        for l in 0..layers {
            let kernel =
                self.gb.var(&format!("{scope}/l{l}/kernel"), self.bytes((2 * h * 4 * h) as f64));
            let mut prev: Option<OpId> = None;
            let mut row = Vec::with_capacity(steps);
            for (t, &b) in below.iter().enumerate() {
                let mut inputs = vec![b];
                if let Some(p) = prev {
                    inputs.push(p);
                }
                let cell = self.gb.compute(
                    &format!("{scope}/l{l}/t{t}/cell"),
                    OpKind::LstmCell,
                    cell_flops,
                    cell_bytes,
                    &inputs,
                    Some(kernel),
                );
                prev = Some(cell);
                row.push(cell);
            }
            below = row;
        }
        self.frontier = *below.last().expect("steps >= 2");
    }

    /// Transformer encoder stack: per-head QKV matmul + attention, head
    /// concat, output projection, then a GELU FFN, with residual adds and
    /// layer norms around both sublayers.
    fn emit_transformer(&mut self, idx: usize) {
        let scope = format!("transformer{idx}");
        let layers = self.depth();
        let heads = 1usize << self.rng.gen_range(0u32..=3);
        let seq = self.rng.gen_range(8usize..=128);
        let h = self.hidden;
        let hd = (h / heads).max(1);
        let tokens = self.batch * seq;
        let tok_elems = (tokens * h) as f64;
        for l in 0..layers {
            let lscope = format!("{scope}/l{l}");
            let x = self.frontier;
            let mut head_outs = Vec::with_capacity(heads);
            for hh in 0..heads {
                let hscope = format!("{lscope}/h{hh}");
                let wqkv =
                    self.gb.var(&format!("{hscope}/qkv/weights"), self.bytes((h * 3 * hd) as f64));
                let qkv = self.gb.compute(
                    &format!("{hscope}/qkv/matmul"),
                    OpKind::MatMul,
                    2.0 * (tokens * h * 3 * hd) as f64,
                    self.bytes((tokens * 3 * hd) as f64),
                    &[x],
                    Some(wqkv),
                );
                let attn = self.gb.compute(
                    &format!("{hscope}/attn"),
                    OpKind::Attention,
                    2.0 * (self.batch * seq * seq * hd) as f64,
                    self.bytes((tokens * hd) as f64),
                    &[qkv],
                    None,
                );
                head_outs.push(attn);
            }
            let cat = self.gb.compute(
                &format!("{lscope}/heads/concat"),
                OpKind::Concat,
                tok_elems,
                self.bytes(tok_elems),
                &head_outs,
                None,
            );
            let wo = self.gb.var(&format!("{lscope}/proj/weights"), self.bytes((h * h) as f64));
            let proj = self.gb.compute(
                &format!("{lscope}/proj/matmul"),
                OpKind::MatMul,
                2.0 * (tokens * h * h) as f64,
                self.bytes(tok_elems),
                &[cat],
                Some(wo),
            );
            let res1 = self.gb.compute(
                &format!("{lscope}/res1/add"),
                OpKind::Elementwise,
                tok_elems,
                self.bytes(tok_elems),
                &[x, proj],
                None,
            );
            let g1 = self.gb.var(&format!("{lscope}/ln1/gamma"), self.bytes(h as f64));
            let ln1 = self.gb.compute(
                &format!("{lscope}/ln1"),
                OpKind::LayerNorm,
                5.0 * tok_elems,
                self.bytes(tok_elems),
                &[res1],
                Some(g1),
            );
            let ff = 4 * h;
            let w1 = self.gb.var(&format!("{lscope}/ffn/w1"), self.bytes((h * ff) as f64));
            let ffn1 = self.gb.compute(
                &format!("{lscope}/ffn/matmul1"),
                OpKind::MatMul,
                2.0 * (tokens * h * ff) as f64,
                self.bytes((tokens * ff) as f64),
                &[ln1],
                Some(w1),
            );
            let gelu = self.gb.compute(
                &format!("{lscope}/ffn/gelu"),
                OpKind::Activation,
                8.0 * (tokens * ff) as f64,
                self.bytes((tokens * ff) as f64),
                &[ffn1],
                None,
            );
            let w2 = self.gb.var(&format!("{lscope}/ffn/w2"), self.bytes((ff * h) as f64));
            let ffn2 = self.gb.compute(
                &format!("{lscope}/ffn/matmul2"),
                OpKind::MatMul,
                2.0 * (tokens * ff * h) as f64,
                self.bytes(tok_elems),
                &[gelu],
                Some(w2),
            );
            let res2 = self.gb.compute(
                &format!("{lscope}/res2/add"),
                OpKind::Elementwise,
                tok_elems,
                self.bytes(tok_elems),
                &[ln1, ffn2],
                None,
            );
            let g2 = self.gb.var(&format!("{lscope}/ln2/gamma"), self.bytes(h as f64));
            self.frontier = self.gb.compute(
                &format!("{lscope}/ln2"),
                OpKind::LayerNorm,
                5.0 * tok_elems,
                self.bytes(tok_elems),
                &[res2],
                Some(g2),
            );
        }
    }

    /// Mixture-of-experts block: a softmax router fanning out to `fan_out`
    /// parallel expert MLPs, reduced back into one tensor — the widest
    /// fan-out/fan-in structure in the corpus.
    fn emit_moe(&mut self, idx: usize) {
        let scope = format!("moe{idx}");
        let experts = self.fan_out();
        let h = self.hidden;
        let b = self.batch;
        let x = self.frontier;
        let tok_elems = (b * h) as f64;
        let wr = self.gb.var(&format!("{scope}/router/weights"), self.bytes((h * experts) as f64));
        let router = self.gb.compute(
            &format!("{scope}/router/matmul"),
            OpKind::MatMul,
            2.0 * (b * h * experts) as f64,
            self.bytes((b * experts) as f64),
            &[x],
            Some(wr),
        );
        let gates = self.gb.compute(
            &format!("{scope}/router/softmax"),
            OpKind::Softmax,
            (3 * b * experts) as f64,
            self.bytes((b * experts) as f64),
            &[router],
            None,
        );
        let mut combined = vec![gates];
        for e in 0..experts {
            let we = self.gb.var(&format!("{scope}/e{e}/w"), self.bytes((h * h) as f64));
            let ff = self.gb.compute(
                &format!("{scope}/e{e}/matmul"),
                OpKind::MatMul,
                2.0 * (b * h * h) as f64,
                self.bytes(tok_elems),
                &[x],
                Some(we),
            );
            let act = self.gb.compute(
                &format!("{scope}/e{e}/gelu"),
                OpKind::Activation,
                8.0 * tok_elems,
                self.bytes(tok_elems),
                &[ff],
                None,
            );
            combined.push(act);
        }
        self.frontier = self.gb.compute(
            &format!("{scope}/combine"),
            OpKind::Reduce,
            (experts as f64) * tok_elems,
            self.bytes(tok_elems),
            &combined,
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Phase;

    #[test]
    fn same_seed_is_bit_identical() {
        let gen = GraphGen::new(GraphGenConfig::default()).unwrap();
        let a = gen.sample(42);
        let b = gen.sample(42);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let gen = GraphGen::new(GraphGenConfig::default()).unwrap();
        let a = gen.sample(1);
        let b = gen.sample(2);
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn sweep_holds_all_invariants() {
        let gen = GraphGen::new(GraphGenConfig::default()).unwrap();
        for seed in 0..24 {
            let g = gen.sample(seed);
            GraphGen::validate(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn sizes_track_target() {
        for target in [64usize, 512, 4096] {
            let gen = GraphGen::new(GraphGenConfig::with_target(target)).unwrap();
            for seed in [0u64, 7, 99] {
                let g = gen.sample(seed);
                let n = g.len();
                // A motif lands in one indivisible chunk, so allow one
                // motif's worth of slack on either side.
                assert!(
                    n >= target / 2 && n <= target + 600,
                    "target {target} seed {seed}: got {n} ops"
                );
            }
        }
    }

    #[test]
    fn forward_only_config_has_no_backward_ops() {
        let cfg = GraphGenConfig { training: false, ..GraphGenConfig::default() };
        let gen = GraphGen::new(cfg).unwrap();
        let g = gen.sample(5);
        assert!(g.nodes().iter().all(|n| n.phase == Phase::Forward));
        GraphGen::validate(&g).unwrap();
    }

    #[test]
    fn scales_to_large_graphs() {
        let gen = GraphGen::new(GraphGenConfig::with_target(10_000)).unwrap();
        let g = gen.sample(3);
        assert!(g.len() >= 9_000, "got {}", g.len());
        GraphGen::validate(&g).unwrap();
    }

    #[test]
    fn degenerate_configs_rejected() {
        for cfg in [
            GraphGenConfig { target_ops: 2, ..GraphGenConfig::default() },
            GraphGenConfig { fan_out: (0, 4), ..GraphGenConfig::default() },
            GraphGenConfig { fan_out: (5, 2), ..GraphGenConfig::default() },
            GraphGenConfig { depth: (0, 0), ..GraphGenConfig::default() },
            GraphGenConfig { memory_pressure: (0.0, 1.0), ..GraphGenConfig::default() },
            GraphGenConfig { memory_pressure: (4.0, 1.0), ..GraphGenConfig::default() },
            GraphGenConfig { batch: (0, 8), ..GraphGenConfig::default() },
            GraphGenConfig {
                motifs: MotifWeights { inception: 0.0, lstm: 0.0, transformer: 0.0, moe: 0.0 },
                ..GraphGenConfig::default()
            },
            GraphGenConfig {
                motifs: MotifWeights { inception: -1.0, ..MotifWeights::default() },
                ..GraphGenConfig::default()
            },
        ] {
            assert!(
                matches!(GraphGen::new(cfg.clone()), Err(GraphError::BadConfig(_))),
                "config accepted: {cfg:?}"
            );
        }
    }

    #[test]
    fn name_scopes_are_hierarchical() {
        let gen = GraphGen::new(GraphGenConfig::default()).unwrap();
        let g = gen.sample(11);
        let with_scope = g.nodes().iter().filter(|n| n.name.contains('/')).count();
        assert!(with_scope * 10 >= g.len() * 9, "{with_scope}/{} ops scoped", g.len());
    }
}
