//! Per-operation feature extraction — the "reconstructed state vectors" of the paper.
//!
//! EAGLE's Sec. III highlights that the inputs fed to the RL agent were reworked so
//! the agent "better understands the computational graph". Following the paper (and
//! Hierarchical Planner), each op is described by its type, its output shape
//! (log-scaled sizes), and its adjacency information; we additionally encode the
//! training phase and the op's normalized topological position, both of which are
//! strong placement signals in training graphs.

use crate::graph::{OpGraph, ALL_OP_KINDS};

/// Number of features describing the op itself (kind one-hot + phase one-hot +
/// scalar descriptors + hashed name-scope embedding).
pub const BASE_DIM: usize = ALL_OP_KINDS.len() + 3 + 7 + PREFIX_DIM;

/// Width of the hashed name-scope embedding. TensorFlow op names carry the layer
/// structure ("decoder/layer2/t7"); grappler's hierarchical planner exploits exactly
/// this via name-scope colocation groups, so the state vector includes a fixed
/// random projection of the op's name scope (the name up to its last segment, with
/// the `grad/` / `update/` markers stripped so a layer's forward, backward and
/// update ops share scope features while the phase one-hot still separates them).
pub const PREFIX_DIM: usize = 8;

/// Dimension of the adjacency summary appended by [`node_features`]:
/// mean one-hot kind of predecessors and of successors.
pub const ADJ_DIM: usize = 2 * ALL_OP_KINDS.len();

/// Total per-op feature dimension produced by [`node_features`].
pub const FEATURE_DIM: usize = BASE_DIM + ADJ_DIM;

/// Log-compresses a non-negative magnitude into `[0, 1]`.
///
/// `ln(1 + x) / 30` saturates at `x = e^30 - 1` (~1.07e13, i.e. ~10 TB when
/// `x` is bytes or ~10 TFLOP when it is flops). GraphGen's memory-pressure
/// sweeps produce tensors at and past that point, where the unclamped version
/// used to leak features > 1.0 into the policy; the clamp pins the range, and
/// `max(0.0)` additionally maps any negative or NaN input to 0 so one corrupt
/// cost annotation cannot poison a whole feature matrix.
fn log_scale(x: f64) -> f32 {
    (((1.0 + x.max(0.0)).ln() / 30.0).min(1.0)) as f32
}

/// The op's name scope: the name with its final segment removed and phase markers
/// stripped (`grad/decoder/layer2/t7` -> `decoder/layer2`).
fn name_scope(name: &str) -> &str {
    let stripped =
        name.strip_prefix("grad/").or_else(|| name.strip_prefix("update/")).unwrap_or(name);
    match stripped.rfind('/') {
        Some(i) => &stripped[..i],
        None => stripped,
    }
}

/// FxHash-style string hash (deterministic across runs and platforms).
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in s.as_bytes() {
        h = (h.rotate_left(5) ^ b as u64).wrapping_mul(0x517cc1b727220a95);
    }
    h
}

/// Pseudo-random value in [-1, 1] derived from a hash and a lane index
/// (splitmix64 finalizer).
fn splitmix_unit(h: u64, lane: u64) -> f32 {
    let mut z = h.wrapping_add(lane.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64 * 2.0 - 1.0) as f32
}

/// Base features of a single op (no adjacency summary): one-hot kind, one-hot phase,
/// log-scaled flops / output bytes / resident bytes, scaled degrees and topological
/// position in `[0, 1]`.
pub fn base_features(g: &OpGraph, topo_pos: &[usize]) -> Vec<Vec<f32>> {
    let n = g.len();
    let mut out = Vec::with_capacity(n);
    for id in g.ids() {
        let node = g.node(id);
        let mut f = vec![0.0f32; BASE_DIM];
        f[node.kind.feature_index()] = 1.0;
        let phase_idx = match node.phase {
            crate::graph::Phase::Forward => 0,
            crate::graph::Phase::Backward => 1,
            crate::graph::Phase::Update => 2,
        };
        f[ALL_OP_KINDS.len() + phase_idx] = 1.0;
        let s = ALL_OP_KINDS.len() + 3;
        f[s] = log_scale(node.flops);
        f[s + 1] = log_scale(node.out_bytes as f64);
        f[s + 2] = log_scale((node.param_bytes + node.act_bytes) as f64);
        f[s + 3] = (g.preds(id).len() as f32 / 8.0).min(1.0);
        f[s + 4] = (g.succs(id).len() as f32 / 8.0).min(1.0);
        f[s + 5] = topo_pos[id.index()] as f32 / n.max(1) as f32;
        // Creation index: builders emit ops module-by-module, so this encodes which
        // structural unit (layer / block / phase) an op belongs to — information the
        // grouper needs to discover layer-shaped groups.
        f[s + 6] = id.index() as f32 / n.max(1) as f32;
        let scope = name_scope(&node.name);
        let h = fxhash(scope);
        for j in 0..PREFIX_DIM {
            f[s + 7 + j] = splitmix_unit(h, j as u64);
        }
        out.push(f);
    }
    out
}

/// Full per-op feature matrix: base features plus an adjacency summary (the mean
/// one-hot kind vector of predecessors and successors). Row order matches op ids.
pub fn node_features(g: &OpGraph) -> Vec<Vec<f32>> {
    let order = g.topo_order();
    let mut topo_pos = vec![0usize; g.len()];
    for (pos, id) in order.iter().enumerate() {
        topo_pos[id.index()] = pos;
    }
    let base = base_features(g, &topo_pos);
    let nk = ALL_OP_KINDS.len();
    base.into_iter()
        .enumerate()
        .map(|(i, mut f)| {
            let id = crate::graph::OpId(i as u32);
            let mut adj = vec![0.0f32; ADJ_DIM];
            let preds = g.preds(id);
            for &p in preds {
                adj[g.node(p).kind.feature_index()] += 1.0;
            }
            if !preds.is_empty() {
                for a in adj[..nk].iter_mut() {
                    *a /= preds.len() as f32;
                }
            }
            let succs = g.succs(id);
            for &s in succs {
                adj[nk + g.node(s).kind.feature_index()] += 1.0;
            }
            if !succs.is_empty() {
                for a in adj[nk..].iter_mut() {
                    *a /= succs.len() as f32;
                }
            }
            f.extend(adj);
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{OpKind, OpNode, Phase};

    fn tiny() -> OpGraph {
        let mut g = OpGraph::new("tiny");
        let a = g.add_node(OpNode::new("in", OpKind::Input, Phase::Forward).with_out_bytes(100));
        let b = g.add_node(
            OpNode::new("mm", OpKind::MatMul, Phase::Forward).with_flops(1e9).with_out_bytes(400),
        );
        let c = g.add_node(OpNode::new("loss", OpKind::Loss, Phase::Forward));
        g.add_edge(a, b);
        g.add_edge(b, c);
        g
    }

    #[test]
    fn feature_dims_and_onehot() {
        let g = tiny();
        let f = node_features(&g);
        assert_eq!(f.len(), 3);
        for row in &f {
            assert_eq!(row.len(), FEATURE_DIM);
            let onehot_sum: f32 = row[..ALL_OP_KINDS.len()].iter().sum();
            assert_eq!(onehot_sum, 1.0, "exactly one kind bit set");
        }
        assert_eq!(f[1][OpKind::MatMul.feature_index()], 1.0);
    }

    #[test]
    fn features_bounded_and_finite() {
        let g = crate::builders::try_gnmt(&crate::builders::GnmtConfig {
            batch: 4,
            hidden: 8,
            layers: 2,
            seq_len: 3,
            vocab: 50,
        })
        .expect("valid GNMT config");
        for row in node_features(&g) {
            for &v in &row {
                assert!(v.is_finite());
                assert!((-1.0..=8.0).contains(&v), "feature {v} out of expected range");
            }
        }
    }

    #[test]
    fn adjacency_summary_reflects_neighbors() {
        let g = tiny();
        let f = node_features(&g);
        let nk = ALL_OP_KINDS.len();
        // MatMul's predecessor is Input, successor is Loss.
        assert_eq!(f[1][BASE_DIM + OpKind::Input.feature_index()], 1.0);
        assert_eq!(f[1][BASE_DIM + nk + OpKind::Loss.feature_index()], 1.0);
        // Input has no predecessors: its pred summary is all zeros.
        assert!(f[0][BASE_DIM..BASE_DIM + nk].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn topo_position_monotone_on_chain() {
        let g = tiny();
        let order = g.topo_order();
        let mut topo_pos = vec![0usize; g.len()];
        for (pos, id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos;
        }
        let base = base_features(&g, &topo_pos);
        let idx = ALL_OP_KINDS.len() + 3 + 5;
        assert!(base[0][idx] < base[1][idx]);
        assert!(base[1][idx] < base[2][idx]);
    }

    #[test]
    fn log_scale_clamps_extremes() {
        // Saturation point: e^30 bytes. Beyond it the feature pins at 1.0
        // instead of drifting out of range.
        assert!(log_scale(1e12) < 1.0);
        assert_eq!(log_scale(2e13), 1.0);
        assert_eq!(log_scale(f64::MAX), 1.0);
        assert_eq!(log_scale(f64::INFINITY), 1.0);
        // Degenerate inputs map to the floor, never NaN.
        assert_eq!(log_scale(0.0), 0.0);
        assert_eq!(log_scale(-5.0), 0.0);
        assert_eq!(log_scale(f64::NAN), 0.0);
    }

    #[test]
    fn isolated_ops_have_zero_not_nan_adjacency() {
        let mut g = OpGraph::new("isolated");
        g.add_node(OpNode::new("island", OpKind::Const, Phase::Forward));
        let a = g.add_node(OpNode::new("a", OpKind::Input, Phase::Forward));
        let b = g.add_node(OpNode::new("b", OpKind::Loss, Phase::Forward));
        g.add_edge(a, b);
        let f = node_features(&g);
        // The isolated op's whole adjacency summary is exactly zero.
        assert!(f[0][BASE_DIM..].iter().all(|&v| v == 0.0));
        for row in &f {
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    /// Every feature stays finite and inside [-1, 1] across a GraphGen sweep
    /// that deliberately spans memory pressures into the e^30-byte saturation
    /// regime — the corpus that first exposed the unclamped log_scale.
    #[test]
    fn features_finite_and_in_range_over_graphgen_sweep() {
        let cfg = crate::graphgen::GraphGenConfig {
            target_ops: 192,
            memory_pressure: (1e-2, 1e9),
            ..crate::graphgen::GraphGenConfig::default()
        };
        let gen = crate::graphgen::GraphGen::new(cfg).unwrap();
        for seed in 0..16 {
            let g = gen.sample(seed);
            for (i, row) in node_features(&g).iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    assert!(v.is_finite(), "seed {seed} op {i} feature {j} = {v}");
                    assert!(
                        (-1.0..=1.0).contains(&v),
                        "seed {seed} op {i} feature {j} = {v} out of [-1, 1]"
                    );
                }
            }
        }
    }

    #[test]
    fn name_scope_features_shared_across_phases() {
        let mut g = OpGraph::new("scopes");
        let a = g.add_node(OpNode::new("decoder/layer2/t7", OpKind::LstmCell, Phase::Forward));
        let b =
            g.add_node(OpNode::new("grad/decoder/layer2/t9", OpKind::LstmCell, Phase::Backward));
        let c = g.add_node(OpNode::new("decoder/layer3/t7", OpKind::LstmCell, Phase::Forward));
        g.add_edge(a, b);
        g.add_edge(a, c);
        let f = node_features(&g);
        let s = ALL_OP_KINDS.len() + 3 + 7;
        // Same scope (layer2) for forward and grad op: identical hash lanes.
        assert_eq!(f[0][s..s + PREFIX_DIM], f[1][s..s + PREFIX_DIM]);
        // Different layer: different hash lanes.
        assert_ne!(f[0][s..s + PREFIX_DIM], f[2][s..s + PREFIX_DIM]);
        // Hash lanes are bounded.
        assert!(f[0][s..s + PREFIX_DIM].iter().all(|v| v.abs() <= 1.0));
    }
}
