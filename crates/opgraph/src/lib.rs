//! # eagle-opgraph
//!
//! Computational-graph substrate for the EAGLE device-placement system.
//!
//! The paper's agent places the operations of TensorFlow training graphs; this crate
//! supplies the equivalent in-Rust representation ([`OpGraph`]) plus deterministic
//! synthetic builders for the three benchmark models the paper evaluates:
//!
//! * [`builders::inception_v3`] — image classifier, batch 1 (fits one GPU),
//! * [`builders::gnmt`] — 4-layer NMT model, batch 256 (OOMs one GPU),
//! * [`builders::bert_base`] — BERT-Base, seq 384 / batch 24 (OOMs one GPU).
//!
//! Graphs include forward, backward and optimizer-update operations with honest
//! FLOP counts, tensor sizes and memory footprints derived from model dimensions.
//! [`features::node_features`] turns a graph into the per-op state vectors the RL
//! agent consumes.

#![warn(missing_docs)]

pub mod builders;
pub mod features;
mod graph;
pub mod graphgen;

pub use graph::{GraphError, OpGraph, OpId, OpKind, OpNode, Phase, ALL_OP_KINDS};
pub use graphgen::{GraphGen, GraphGenConfig, MotifWeights};
