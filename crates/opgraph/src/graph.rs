//! Core computational-graph representation.
//!
//! An [`OpGraph`] is a DAG of operations annotated with the metadata the placement
//! problem needs: per-op compute cost (FLOPs), output tensor size (communication
//! cost when producer and consumer sit on different devices), and persistent /
//! transient memory footprints (OOM constraints).

use serde::{Deserialize, Serialize};

/// Why a graph edit or query could not be satisfied.
///
/// The panicking entry points ([`OpGraph::add_edge`], [`OpGraph::topo_order`])
/// remain for builder code whose inputs are correct by construction; generators
/// and anything consuming untrusted or randomized structure should use the
/// `try_` variants and [`OpGraph::validate`], which report these typed errors
/// instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint does not name a node of this graph.
    NodeOutOfRange {
        /// The offending id.
        op: OpId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge would connect an op to itself.
    SelfLoop {
        /// The op on both ends.
        op: OpId,
    },
    /// The graph contains a directed cycle.
    Cycle,
    /// The graph has no operations.
    Empty,
    /// An op carries a non-finite or negative cost annotation.
    BadCost {
        /// The offending op.
        op: OpId,
        /// Which annotation was bad (`"flops"`).
        what: &'static str,
    },
    /// A generator or builder configuration is unusable (zero-width layer,
    /// zero motif weights, empty ranges, ...). The message names the field.
    BadConfig(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { op, len } => {
                write!(f, "op id {} out of range for a graph of {len} nodes", op.0)
            }
            GraphError::SelfLoop { op } => write!(f, "self-loop on op id {}", op.0),
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::Empty => write!(f, "graph has no operations"),
            GraphError::BadCost { op, what } => {
                write!(f, "op id {} has a non-finite or negative {what}", op.0)
            }
            GraphError::BadConfig(msg) => write!(f, "bad graph configuration: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Identifier of an operation inside one [`OpGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl OpId {
    /// Index form for slicing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of computation an operation performs.
///
/// The set mirrors what TensorFlow graphs of the three benchmark models contain,
/// fused to the granularity placement papers operate at (e.g. one `LstmCell` op per
/// timestep rather than its dozen constituent matmuls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Input pipeline / data feed.
    Input,
    /// Trainable variable (weight read).
    Variable,
    /// Constant tensor.
    Const,
    /// 2-D convolution.
    Conv2d,
    /// Dense matrix multiply / fully-connected layer.
    MatMul,
    /// Fused LSTM cell step.
    LstmCell,
    /// Embedding table lookup (gather) — notoriously CPU-friendly.
    Embedding,
    /// Attention score + context computation.
    Attention,
    /// Batch normalization.
    BatchNorm,
    /// Layer normalization.
    LayerNorm,
    /// Pooling (max/avg).
    Pool,
    /// Element-wise activation (ReLU/GELU/tanh/sigmoid).
    Activation,
    /// Softmax (including large vocab projections' normalization).
    Softmax,
    /// Cross-entropy / loss computation.
    Loss,
    /// Element-wise arithmetic (residual adds, scaling, dropout masks).
    Elementwise,
    /// Concatenation of tensors.
    Concat,
    /// Split / slice of tensors.
    Split,
    /// Shape-only manipulation (reshape/transpose) — nearly free compute.
    Reshape,
    /// Reduction (sum/mean over axes).
    Reduce,
    /// Gradient-aggregation op (backward-pass accumulation).
    GradAccum,
    /// Optimizer update (Adam/SGD apply).
    ApplyUpdate,
}

/// All op kinds, in feature-encoding order.
pub const ALL_OP_KINDS: [OpKind; 21] = [
    OpKind::Input,
    OpKind::Variable,
    OpKind::Const,
    OpKind::Conv2d,
    OpKind::MatMul,
    OpKind::LstmCell,
    OpKind::Embedding,
    OpKind::Attention,
    OpKind::BatchNorm,
    OpKind::LayerNorm,
    OpKind::Pool,
    OpKind::Activation,
    OpKind::Softmax,
    OpKind::Loss,
    OpKind::Elementwise,
    OpKind::Concat,
    OpKind::Split,
    OpKind::Reshape,
    OpKind::Reduce,
    OpKind::GradAccum,
    OpKind::ApplyUpdate,
];

impl OpKind {
    /// Stable index of this kind within [`ALL_OP_KINDS`] (one-hot feature position).
    ///
    /// Infallible invariant: every `OpKind` variant appears in [`ALL_OP_KINDS`]
    /// (`op_kind_feature_indices_unique` exhaustively pins this), so the
    /// `expect` below is unreachable for any value of `self`.
    pub fn feature_index(self) -> usize {
        ALL_OP_KINDS.iter().position(|&k| k == self).expect("kind present in ALL_OP_KINDS")
    }

    /// True for ops that run efficiently on a CPU (or must run there), such as the
    /// input pipeline and embedding gathers. The paper observes RL agents learn to
    /// move exactly these ops to the CPU (Sec. IV-D, Inception analysis).
    pub fn cpu_friendly(self) -> bool {
        matches!(self, OpKind::Input | OpKind::Embedding | OpKind::Reshape | OpKind::Const)
    }
}

/// Which training phase an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward (gradient) pass.
    Backward,
    /// Parameter update.
    Update,
}

/// One operation in the computational graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpNode {
    /// Human-readable name (`"layer3/conv2d"`, mirroring TF naming).
    pub name: String,
    /// Kind of computation.
    pub kind: OpKind,
    /// Training phase.
    pub phase: Phase,
    /// Floating-point operations per training step.
    pub flops: f64,
    /// Bytes of the output tensor (transferred to each consumer on another device).
    pub out_bytes: u64,
    /// Persistent bytes (weights + optimizer slots) resident on the op's device.
    pub param_bytes: u64,
    /// Transient activation bytes live while the step executes.
    pub act_bytes: u64,
    /// TensorFlow-style co-location hint: ops sharing a group id are expected to sit
    /// on one device (e.g. a variable and its update op).
    pub colocation: Option<u32>,
}

impl OpNode {
    /// Creates a node with the given name/kind/phase and zeroed costs.
    pub fn new(name: impl Into<String>, kind: OpKind, phase: Phase) -> Self {
        Self {
            name: name.into(),
            kind,
            phase,
            flops: 0.0,
            out_bytes: 0,
            param_bytes: 0,
            act_bytes: 0,
            colocation: None,
        }
    }

    /// Builder-style FLOPs setter.
    pub fn with_flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    /// Builder-style output-size setter.
    pub fn with_out_bytes(mut self, bytes: u64) -> Self {
        self.out_bytes = bytes;
        self
    }

    /// Builder-style parameter-memory setter.
    pub fn with_param_bytes(mut self, bytes: u64) -> Self {
        self.param_bytes = bytes;
        self
    }

    /// Builder-style activation-memory setter.
    pub fn with_act_bytes(mut self, bytes: u64) -> Self {
        self.act_bytes = bytes;
        self
    }

    /// Builder-style co-location setter.
    pub fn with_colocation(mut self, group: u32) -> Self {
        self.colocation = Some(group);
        self
    }
}

/// A directed acyclic computational graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpGraph {
    /// Model name (`"inception_v3"`, `"gnmt"`, `"bert_base"`, ...).
    pub model_name: String,
    nodes: Vec<OpNode>,
    /// Successor adjacency, parallel to `nodes`.
    succs: Vec<Vec<OpId>>,
    /// Predecessor adjacency, parallel to `nodes`.
    preds: Vec<Vec<OpId>>,
}

impl OpGraph {
    /// Creates an empty graph with the given model name.
    pub fn new(model_name: impl Into<String>) -> Self {
        Self { model_name: model_name.into(), ..Default::default() }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: OpNode) -> OpId {
        self.nodes.push(node);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        OpId(self.nodes.len() as u32 - 1)
    }

    /// Adds a directed edge `from -> to` (producer to consumer). Duplicate edges
    /// are ignored.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range ids — builder code constructs ids
    /// by insertion, so either indicates a builder bug. Randomized callers
    /// should use [`OpGraph::try_add_edge`] instead.
    pub fn add_edge(&mut self, from: OpId, to: OpId) {
        self.try_add_edge(from, to).unwrap_or_else(|e| panic!("add_edge({from:?}, {to:?}): {e}"));
    }

    /// Adds a directed edge `from -> to`, reporting self-loops and out-of-range
    /// endpoints as typed [`GraphError`]s instead of panicking. Duplicate edges
    /// are ignored.
    pub fn try_add_edge(&mut self, from: OpId, to: OpId) -> Result<(), GraphError> {
        let len = self.nodes.len();
        for op in [from, to] {
            if op.index() >= len {
                return Err(GraphError::NodeOutOfRange { op, len });
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop { op: from });
        }
        if self.succs[from.index()].contains(&to) {
            return Ok(());
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no operations.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Node accessor.
    pub fn node(&self, id: OpId) -> &OpNode {
        &self.nodes[id.index()]
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: OpId) -> &mut OpNode {
        &mut self.nodes[id.index()]
    }

    /// All node ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.nodes.len() as u32).map(OpId)
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// Successors (consumers) of an op.
    pub fn succs(&self, id: OpId) -> &[OpId] {
        &self.succs[id.index()]
    }

    /// Predecessors (producers) of an op.
    pub fn preds(&self, id: OpId) -> &[OpId] {
        &self.preds[id.index()]
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (OpId, OpId)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |&t| (OpId(i as u32), t)))
    }

    /// Kahn topological order.
    ///
    /// # Panics
    /// Panics if the graph contains a cycle (builders must produce DAGs).
    /// Randomized callers should use [`OpGraph::try_topo_order`] instead.
    pub fn topo_order(&self) -> Vec<OpId> {
        self.try_topo_order().unwrap_or_else(|e| panic!("topo_order: {e} (graph contains a cycle)"))
    }

    /// Kahn topological order, reporting a cycle as [`GraphError::Cycle`]
    /// instead of panicking.
    pub fn try_topo_order(&self) -> Result<Vec<OpId>, GraphError> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<OpId> =
            self.ids().filter(|id| indeg[id.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &s in self.succs(id) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() != self.len() {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// Checks every structural and cost invariant downstream consumers (the
    /// simulator, the feature extractor, the policies) rely on:
    ///
    /// * the graph is non-empty and acyclic,
    /// * adjacency is internally consistent (every successor edge has a
    ///   matching predecessor entry, endpoints in range, no self-loops),
    /// * every op's FLOPs are finite and non-negative.
    ///
    /// Generated graphs ([`crate::graphgen::GraphGen`]) additionally guarantee
    /// that edges always point from a lower id to a higher one (insertion order
    /// is a topological order); that stronger property is checked by
    /// [`crate::graphgen::GraphGen::validate`], not here, because hand-built
    /// graphs are free to insert nodes in any order.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.is_empty() {
            return Err(GraphError::Empty);
        }
        let len = self.len();
        for (i, succs) in self.succs.iter().enumerate() {
            let from = OpId(i as u32);
            for &to in succs {
                if to.index() >= len {
                    return Err(GraphError::NodeOutOfRange { op: to, len });
                }
                if to == from {
                    return Err(GraphError::SelfLoop { op: from });
                }
                if !self.preds[to.index()].contains(&from) {
                    return Err(GraphError::NodeOutOfRange { op: from, len });
                }
            }
        }
        for id in self.ids() {
            let n = self.node(id);
            if !n.flops.is_finite() || n.flops < 0.0 {
                return Err(GraphError::BadCost { op: id, what: "flops" });
            }
        }
        if !self.is_acyclic() {
            return Err(GraphError::Cycle);
        }
        Ok(())
    }

    /// True when the graph is a DAG.
    pub fn is_acyclic(&self) -> bool {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<usize> =
            indeg.iter().enumerate().filter(|(_, &d)| d == 0).map(|(i, _)| i).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop_front() {
            seen += 1;
            for &s in &self.succs[i] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s.index());
                }
            }
        }
        seen == self.len()
    }

    /// Total FLOPs per training step.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Total persistent parameter bytes.
    pub fn total_param_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.param_bytes).sum()
    }

    /// Total transient activation bytes.
    pub fn total_act_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.act_bytes).sum()
    }

    /// Total memory footprint (params + activations).
    pub fn total_bytes(&self) -> u64 {
        self.total_param_bytes() + self.total_act_bytes()
    }

    /// Serializes the graph to JSON.
    ///
    /// Infallible invariant: `OpGraph` is plain data (strings, numbers, vecs)
    /// with a derived `Serialize`, and the JSON writer renders every such tree
    /// (non-finite floats become `null`), so the `expect` is unreachable.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("OpGraph serializes")
    }

    /// Deserializes a graph from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> OpGraph {
        let mut g = OpGraph::new("diamond");
        let a = g.add_node(OpNode::new("a", OpKind::Input, Phase::Forward));
        let b = g.add_node(OpNode::new("b", OpKind::Conv2d, Phase::Forward).with_flops(10.0));
        let c = g.add_node(OpNode::new("c", OpKind::Pool, Phase::Forward).with_flops(5.0));
        let d = g.add_node(OpNode::new("d", OpKind::Concat, Phase::Forward));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.succs(OpId(0)), &[OpId(1), OpId(2)]);
        assert_eq!(g.preds(OpId(3)), &[OpId(1), OpId(2)]);
        assert_eq!(g.total_flops(), 15.0);
        assert!(g.is_acyclic());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = diamond();
        let e = g.num_edges();
        g.add_edge(OpId(0), OpId(1));
        assert_eq!(g.num_edges(), e);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order();
        let pos: Vec<usize> =
            g.ids().map(|id| order.iter().position(|&o| o == id).unwrap()).collect();
        for (f, t) in g.edges() {
            assert!(pos[f.index()] < pos[t.index()], "{f:?} must precede {t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn topo_order_panics_on_cycle() {
        let mut g = diamond();
        g.add_edge(OpId(3), OpId(0));
        let _ = g.topo_order();
    }

    #[test]
    fn cycle_detection() {
        let mut g = diamond();
        assert!(g.is_acyclic());
        g.add_edge(OpId(3), OpId(0));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn json_roundtrip() {
        let g = diamond();
        let j = g.to_json();
        let g2 = OpGraph::from_json(&j).unwrap();
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.node(OpId(1)).flops, 10.0);
        assert_eq!(g2.model_name, "diamond");
    }

    #[test]
    fn op_kind_feature_indices_unique() {
        for (i, k) in ALL_OP_KINDS.iter().enumerate() {
            assert_eq!(k.feature_index(), i);
        }
    }

    #[test]
    fn try_add_edge_reports_typed_errors() {
        let mut g = diamond();
        // Self-loop: formerly an assert panic in add_edge.
        assert_eq!(g.try_add_edge(OpId(1), OpId(1)), Err(GraphError::SelfLoop { op: OpId(1) }));
        // Out-of-range endpoints: formerly an index panic.
        assert_eq!(
            g.try_add_edge(OpId(0), OpId(99)),
            Err(GraphError::NodeOutOfRange { op: OpId(99), len: 4 })
        );
        assert_eq!(
            g.try_add_edge(OpId(99), OpId(0)),
            Err(GraphError::NodeOutOfRange { op: OpId(99), len: 4 })
        );
        // Errors leave the graph untouched.
        assert_eq!(g.num_edges(), 4);
        // Valid and duplicate edges still work.
        assert_eq!(g.try_add_edge(OpId(0), OpId(3)), Ok(()));
        assert_eq!(g.try_add_edge(OpId(0), OpId(3)), Ok(()));
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn try_topo_order_reports_cycle() {
        let mut g = diamond();
        assert!(g.try_topo_order().is_ok());
        g.add_edge(OpId(3), OpId(0));
        assert_eq!(g.try_topo_order(), Err(GraphError::Cycle));
    }

    #[test]
    fn validate_catches_structural_and_cost_violations() {
        assert_eq!(OpGraph::new("empty").validate(), Err(GraphError::Empty));

        let g = diamond();
        assert_eq!(g.validate(), Ok(()));

        let mut cyclic = diamond();
        cyclic.add_edge(OpId(3), OpId(0));
        assert_eq!(cyclic.validate(), Err(GraphError::Cycle));

        let mut bad = diamond();
        bad.node_mut(OpId(1)).flops = f64::NAN;
        assert_eq!(bad.validate(), Err(GraphError::BadCost { op: OpId(1), what: "flops" }));
        bad.node_mut(OpId(1)).flops = -1.0;
        assert_eq!(bad.validate(), Err(GraphError::BadCost { op: OpId(1), what: "flops" }));
    }

    #[test]
    fn graph_error_display_is_descriptive() {
        let e = GraphError::NodeOutOfRange { op: OpId(7), len: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        assert!(GraphError::BadConfig("layers = 0".into()).to_string().contains("layers"));
    }

    #[test]
    fn cpu_friendly_flags() {
        assert!(OpKind::Embedding.cpu_friendly());
        assert!(OpKind::Input.cpu_friendly());
        assert!(!OpKind::Conv2d.cpu_friendly());
        assert!(!OpKind::MatMul.cpu_friendly());
    }
}
